"""Client-side Predictor Manager (§3.3, §4).

Owns the application-provided client predictor component: feeds it
interaction events and requests, and **periodically** (every 150 ms by
default, §6.1) asks it for its anytime state and ships that state to
the server.  The manager — not the predictor — controls how often
distributions are made and sent, which is the knob Appendix B.1
sweeps (50–350 ms).
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any, Callable, Optional

if TYPE_CHECKING:  # typing only — avoids a core <-> predictors import cycle
    from repro.predictors.base import ClientPredictor

from repro.clock import Clock

__all__ = ["PredictorManager"]

#: Distinguishes "no precomputed state supplied" from a predictor that
#: legitimately returned ``None``.
_COMPUTE = object()


class PredictorManager:
    """Periodic state shipper wrapping a client predictor component.

    ``send_state`` typically wraps the uplink control channel and the
    server's ``on_predictor_state``.

    Under a fleet, the coalesced prediction tick
    (:class:`~repro.fleet.schedule_service.FleetScheduleService`)
    replaces the periodic task (``autostart=False``) and drives
    :meth:`poll` itself — optionally handing in a state produced by a
    stacked per-family pass (the Kalman extrapolation batch) — so the
    dedup and accounting stay per-session here no matter which path
    computed the state.  One manager exists per live session and is
    polled every 150 ms; ``__slots__`` keeps the fleet's N-session
    footprint flat.
    """

    __slots__ = (
        "sim",
        "client_predictor",
        "send_state",
        "interval_s",
        "send_unchanged",
        "_last_state",
        "_task",
        "states_sent",
        "state_bytes_sent",
    )

    DEFAULT_INTERVAL_S = 0.150

    def __init__(
        self,
        sim: Clock,
        client_predictor: ClientPredictor,
        send_state: Callable[[Any], None],
        interval_s: float = DEFAULT_INTERVAL_S,
        send_unchanged: bool = False,
        autostart: bool = True,
    ) -> None:
        if interval_s <= 0:
            raise ValueError("interval must be positive")
        self.sim = sim
        self.client_predictor = client_predictor
        self.send_state = send_state
        self.interval_s = interval_s
        self.send_unchanged = send_unchanged
        self._last_state: Any = object()  # sentinel != any real state
        # ``autostart=False`` hands the tick cadence to an external
        # driver (the fleet's coalesced prediction tick), which calls
        # :meth:`poll` instead of this manager owning a periodic task.
        self._task = sim.every(interval_s, self._tick) if autostart else None
        self.states_sent = 0
        self.state_bytes_sent = 0

    def observe_event(self, event: Any) -> None:
        """Forward a client interaction event to the predictor."""
        self.client_predictor.observe_event(self.sim.now, event)

    def observe_request(self, request: int) -> None:
        """Forward an issued request to the predictor."""
        self.client_predictor.observe_request(self.sim.now, request)

    def poll(self, state: Any = _COMPUTE) -> Any:
        """The state that should ship now, or None (unchanged / not ready).

        Does everything one periodic tick does — snapshot, dedup
        against the last shipped state, accounting — except the actual
        send, so an external driver can transport the state itself.
        ``state`` lets that driver supply a precomputed snapshot (the
        fleet's stacked predictor pass); it must equal what
        ``client_predictor.state(sim.now)`` would return, so the dedup
        and accounting semantics are unchanged.
        """
        if state is _COMPUTE:
            state = self.client_predictor.state(self.sim.now)
        if state is None:
            return None
        if not self.send_unchanged and state == self._last_state:
            return None
        self._last_state = state
        self.states_sent += 1
        self.state_bytes_sent += self.client_predictor.state_size_bytes(state)
        return state

    def _tick(self) -> None:
        state = self.poll()
        if state is not None:
            self.send_state(state)

    def stop(self) -> None:
        if self._task is not None:
            self._task.cancel()

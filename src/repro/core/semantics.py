"""Reference schedule semantics (Appendix A.2).

The appendix defines what the *correct* global schedule is when the
client sends a sequence of prediction distributions: block ``b_i`` of
the global schedule must be the block that a scheduler using the most
recent prediction to arrive before slot ``i`` would pick, with slots
before the first prediction falling back to a uniform distribution and
batch boundaries every ``C`` slots.

:class:`ReferenceScheduler` implements those semantics directly (and
slowly) on top of any single-distribution scheduler factory.  It is
ground truth for testing the production pipeline's preemption logic:
the sender + greedy scheduler must produce a schedule that matches the
reference *given the same sampling decisions* — randomness is pinned
by sharing the seed.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Optional, Sequence

from .distribution import RequestDistribution
from .greedy import GreedyScheduler
from .scheduler import GainTable, ScheduledBlock

__all__ = ["PredictionArrival", "ReferenceScheduler"]


@dataclass(frozen=True)
class PredictionArrival:
    """A prediction ``dist`` arriving at the server in slot ``slot``."""

    slot: int
    dist: RequestDistribution

    def __post_init__(self) -> None:
        if self.slot < 0:
            raise ValueError("arrival slot must be non-negative")


class ReferenceScheduler:
    """Computes the Appendix A.2 idealized global schedule.

    Parameters
    ----------
    gains, cache_blocks:
        The usual scheduling inputs; ``cache_blocks`` is both horizon
        and batch length ``C``.
    scheduler_factory:
        Builds a fresh single-distribution scheduler; defaults to the
        greedy scheduler with a fixed seed so runs are comparable.
    """

    def __init__(
        self,
        gains: GainTable,
        cache_blocks: int,
        seed: int = 0,
        scheduler_factory: Optional[Callable[[], GreedyScheduler]] = None,
    ) -> None:
        self.gains = gains
        self.C = cache_blocks
        self.seed = seed
        self._factory = scheduler_factory or (
            lambda: GreedyScheduler(
                gains=gains,
                cache_blocks=cache_blocks,
                meta_request=True,
                hedge_when_idle=True,
                seed=seed,
            )
        )

    def schedule(
        self,
        num_slots: int,
        arrivals: Sequence[PredictionArrival],
        slot_duration_s: float = 0.01,
    ) -> list[Optional[ScheduledBlock]]:
        """The global schedule ``b_1 .. b_num_slots``.

        Implements the A.2 case analysis: each batch ``m`` covers slots
        ``[mC, (m+1)C)``; within a batch, a new arrival at slot ``i``
        reschedules slots ``i..`` of the batch under the new
        distribution while keeping the already-emitted prefix.
        """
        if num_slots < 0:
            raise ValueError("num_slots must be non-negative")
        ordered = sorted(arrivals, key=lambda a: a.slot)
        for a, b in zip(ordered, ordered[1:]):
            if a.slot == b.slot:
                raise ValueError(f"two predictions arrive in slot {a.slot}")

        out: list[Optional[ScheduledBlock]] = []
        scheduler = self._factory()
        scheduler.update_distribution(
            RequestDistribution.uniform(self.gains.n), slot_duration_s
        )
        pending = list(ordered)
        for slot in range(num_slots):
            while pending and pending[0].slot <= slot:
                arrival = pending.pop(0)
                scheduler.update_distribution(arrival.dist, slot_duration_s)
            out.append(scheduler.next_block())
        return out

"""Client-side cache manager (§3.2, §3.3).

User-generated requests are **never sent to the network**.  They are
registered here; the manager answers them from the local block cache —
immediately when at least one block is present (a cache *hit*), or as
soon as the first block arrives (a *miss*, with the wait counted as
response latency).  Answering a request makes an application *upcall*.

Preemptive interactions (§2): every registration gets an increasing
logical timestamp, and an upcall for timestamp ``T`` deregisters all
pending requests with earlier timestamps — the user has moved on, so
rendering stale data would only confuse them.  Those dropped requests
are *preempted*; the paper reports their percentage separately and
computes latency/utility only over served requests.

After an upcall, later blocks for the same (still most-recent) request
trigger *improvement* upcalls, which is how quality converges to 1 when
the user pauses (Fig. 10).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Optional

from repro.clock import Clock

from .blocks import Block
from .cache import RingBufferCache
from .utility import UtilityFunction

__all__ = ["CacheManager", "RequestOutcome", "Upcall"]


@dataclass
class Upcall:
    """Data handed to the application when a request is answered."""

    request: int
    logical_ts: int
    time_s: float
    blocks_available: int
    utility: float
    is_improvement: bool = False


@dataclass
class RequestOutcome:
    """Lifecycle record of one registered request (for metrics)."""

    request: int
    logical_ts: int
    registered_at: float
    cache_hit: bool = False
    served_at: Optional[float] = None
    preempted: bool = False
    utility_at_upcall: float = 0.0
    blocks_at_upcall: int = 0
    improvements: list[Upcall] = field(default_factory=list)

    @property
    def served(self) -> bool:
        return self.served_at is not None

    @property
    def latency_s(self) -> Optional[float]:
        if self.served_at is None:
            return None
        return self.served_at - self.registered_at


class CacheManager:
    """Registers requests against the block cache and makes upcalls.

    Parameters
    ----------
    clock:
        Time source (:class:`repro.clock.Clock`; only ``now`` is used —
        either the simulator or a wall clock works).
    cache:
        The client's ring-buffer block cache.
    num_blocks_of:
        ``request -> Nb`` so utilities can be computed from prefix
        fractions.
    utility:
        The application's utility function.
    on_upcall:
        Application callback invoked with each :class:`Upcall`.
    """

    def __init__(
        self,
        clock: Clock,
        cache: RingBufferCache,
        num_blocks_of: Callable[[int], int],
        utility: UtilityFunction,
        on_upcall: Optional[Callable[[Upcall], None]] = None,
    ) -> None:
        self.clock = clock
        self.cache = cache
        self.num_blocks_of = num_blocks_of
        self.utility = utility
        self.on_upcall = on_upcall
        self._next_ts = 0
        self._pending: dict[int, RequestOutcome] = {}  # logical ts -> outcome
        self._latest_served: Optional[RequestOutcome] = None
        self.outcomes: list[RequestOutcome] = []

    # -- application side --------------------------------------------

    def register(self, request: int) -> RequestOutcome:
        """Register a user request; answer immediately on a cache hit."""
        ts = self._next_ts
        self._next_ts += 1
        outcome = RequestOutcome(
            request=request, logical_ts=ts, registered_at=self.clock.now
        )
        self.outcomes.append(outcome)
        if self.cache.has(request):
            outcome.cache_hit = True
            self._serve(outcome)
        else:
            self._pending[ts] = outcome
        return outcome

    # -- network side ------------------------------------------------

    def on_block(self, block: Block) -> None:
        """Handle a block pushed from the server."""
        self.cache.put(block)
        # Serve the *newest* pending request for this block's request id
        # (serving it preempts the older ones anyway).
        match = None
        for ts in sorted(self._pending, reverse=True):
            if self._pending[ts].request == block.request:
                match = self._pending[ts]
                break
        if match is not None:
            self._serve(match)
            return
        latest = self._latest_served
        if (
            latest is not None
            and latest.request == block.request
            and not self._pending
        ):
            self._improve(latest)

    # -- internals ---------------------------------------------------

    def _quality(self, request: int) -> tuple[int, float]:
        available = self.cache.prefix_len(request)
        nb = self.num_blocks_of(request)
        available = min(available, nb)
        return available, float(self.utility(available / nb))

    def _serve(self, outcome: RequestOutcome) -> None:
        now = self.clock.now
        blocks, utility = self._quality(outcome.request)
        outcome.served_at = now
        outcome.blocks_at_upcall = blocks
        outcome.utility_at_upcall = utility
        self._pending.pop(outcome.logical_ts, None)
        # Preempt everything registered before this request (§3.3).
        for ts in [t for t in self._pending if t < outcome.logical_ts]:
            self._pending.pop(ts).preempted = True
        self._latest_served = outcome
        if self.on_upcall is not None:
            self.on_upcall(
                Upcall(
                    request=outcome.request,
                    logical_ts=outcome.logical_ts,
                    time_s=now,
                    blocks_available=blocks,
                    utility=utility,
                )
            )

    def _improve(self, outcome: RequestOutcome) -> None:
        blocks, utility = self._quality(outcome.request)
        if blocks <= outcome.blocks_at_upcall and not outcome.improvements:
            return
        last_blocks = (
            outcome.improvements[-1].blocks_available
            if outcome.improvements
            else outcome.blocks_at_upcall
        )
        if blocks <= last_blocks:
            return
        upcall = Upcall(
            request=outcome.request,
            logical_ts=outcome.logical_ts,
            time_s=self.clock.now,
            blocks_available=blocks,
            utility=utility,
            is_improvement=True,
        )
        outcome.improvements.append(upcall)
        if self.on_upcall is not None:
            self.on_upcall(upcall)

    # -- introspection -----------------------------------------------

    @property
    def pending_count(self) -> int:
        return len(self._pending)

    def finalize(self) -> None:
        """Mark still-pending requests at end of run (never served)."""
        self._pending.clear()

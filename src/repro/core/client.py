"""Khameleon client assembly (§3.2).

The client library a DVE application imports: requests go to the cache
manager (never the network), events go to the predictor manager, and
blocks pushed by the server feed both the block cache and the receive-
rate monitor.
"""

from __future__ import annotations

from typing import Any, Optional

from repro.core.blocks import Block
from repro.core.cache_manager import CacheManager, RequestOutcome
from repro.core.predictor_manager import PredictorManager
from repro.sim.bandwidth import ReceiveRateMonitor
from repro.clock import Clock

__all__ = ["KhameleonClient"]


class KhameleonClient:
    """Client endpoint: application-facing requests and events."""

    def __init__(
        self,
        sim: Clock,
        cache_manager: CacheManager,
        predictor_manager: PredictorManager,
        rate_monitor: ReceiveRateMonitor,
    ) -> None:
        self.sim = sim
        self.cache_manager = cache_manager
        self.predictor_manager = predictor_manager
        self.rate_monitor = rate_monitor
        self.closed = False
        self.blocks_received = 0
        self.bytes_received = 0

    # -- application side ----------------------------------------------

    def request(self, request: int) -> Optional[RequestOutcome]:
        """Issue a user request (answered via upcall, §3.2).

        Returns ``None`` after :meth:`stop` — a departed user's replayed
        trace tail must not register requests or train the predictor.
        """
        if self.closed:
            return None
        self.predictor_manager.observe_request(request)
        return self.cache_manager.register(request)

    def observe(self, event: Any) -> None:
        """Feed an interaction event (mouse move etc.) to the predictor."""
        if self.closed:
            return
        self.predictor_manager.observe_event(event)

    # -- network side ----------------------------------------------------

    def on_block(self, block: Block) -> None:
        """Downlink delivery of one pushed block."""
        self.blocks_received += 1
        self.bytes_received += block.size_bytes
        self.rate_monitor.on_bytes(block.size_bytes)
        self.cache_manager.on_block(block)

    def stop(self) -> None:
        """Cancel periodic tasks (end of experiment or departure)."""
        self.closed = True
        self.predictor_manager.stop()
        self.rate_monitor.stop()
        self.cache_manager.finalize()

"""Khameleon server assembly (§3.2).

Glues the server-side pieces together: predictor decoding → scheduler
update → sender refresh, plus bandwidth-estimate reports from the
client.  The server's *slot duration* — how long one block occupies
the wire — is derived from the nominal block size and the current
bandwidth estimate; it is what maps schedule slots onto the
predictor's wall-clock horizons.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any, Optional, Sequence

if TYPE_CHECKING:  # typing only — avoids a core <-> predictors import cycle
    from repro.predictors.base import ServerPredictor

from repro.core.distribution import RequestDistribution
from repro.core.scheduler import Scheduler
from repro.core.sender import Sender
from repro.sim.bandwidth import HarmonicMeanEstimator
from repro.clock import Clock

__all__ = ["KhameleonServer"]


class KhameleonServer:
    """Server endpoint: receives predictor states and rate reports."""

    def __init__(
        self,
        sim: Clock,
        scheduler: Scheduler,
        sender: Sender,
        predictor_server: ServerPredictor,
        deltas_s: Sequence[float],
        estimator: HarmonicMeanEstimator,
        nominal_block_bytes: int,
        num_requests: int,
    ) -> None:
        if nominal_block_bytes <= 0:
            raise ValueError("block size must be positive")
        if num_requests < 1:
            raise ValueError("num_requests must be >= 1")
        self.sim = sim
        self.scheduler = scheduler
        self.sender = sender
        self.predictor_server = predictor_server
        self.deltas_s = tuple(deltas_s)
        self.estimator = estimator
        self.nominal_block_bytes = nominal_block_bytes
        self.num_requests = num_requests
        self.states_received = 0
        self.rate_reports_received = 0

    @property
    def slot_duration_s(self) -> float:
        """Transmission time of one block at the current estimate."""
        return self.nominal_block_bytes / self.estimator.estimate

    def start(self) -> None:
        """Begin pushing immediately, hedging uniformly until a
        prediction arrives (§3.2: all requests equally likely by
        default)."""
        self.scheduler.update_distribution(
            RequestDistribution.uniform(self.num_requests, self.deltas_s),
            self.slot_duration_s,
        )
        self.sender.start()

    def record_state_received(self) -> None:
        """Accounting for one ingested predictor state.

        The single definition of the receive-side bookkeeping: used by
        :meth:`decode_state` and by the fleet's batched decode (which
        produces the distribution in a stacked pass but must account
        identically per session).
        """
        self.states_received += 1

    def decode_state(self, state: Any) -> RequestDistribution:
        """Ingest one predictor state: accounting + decode.

        The single definition of the server-side state-receive step,
        shared by the per-session uplink path below and the fleet's
        batched :class:`~repro.fleet.schedule_service.FleetScheduleService`
        (which applies the resulting distribution itself, in a stacked
        recompute).
        """
        self.record_state_received()
        return self.predictor_server.decode(state, self.deltas_s)

    def on_predictor_state(self, state: Any) -> None:
        """Uplink delivery of a client predictor state."""
        dist = self.decode_state(state)
        self.scheduler.update_distribution(dist, self.slot_duration_s)
        self.sender.refresh()

    def on_rate_report(self, bytes_per_s: float) -> None:
        """Uplink delivery of a client receive-rate measurement (§5.4)."""
        self.rate_reports_received += 1
        self.estimator.report(bytes_per_s)

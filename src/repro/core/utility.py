"""Utility functions (§3.3, Fig. 3).

A utility function ``U: [0,1] -> [0,1]`` maps the *fraction of blocks
available* for a request to a quality score: 0 means most dissimilar to
the full result, 1 means identical in expectation.  ``U`` must be
monotonically non-decreasing with ``U(0) = 0``.

The scheduler never evaluates ``U`` directly — it linearizes it into
per-block *gains* ``g(i) = U(i/Nb) - U((i-1)/Nb)`` (§5.2), which is
exact because block counts are discrete.

Khameleon's conservative default is :class:`LinearUtility`; the image
application uses a concave SSIM-derived curve (Fig. 3) where the first
few blocks carry most of the quality — reproduced here by
:func:`ssim_image_utility`.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

__all__ = [
    "UtilityFunction",
    "LinearUtility",
    "PowerUtility",
    "PiecewiseUtility",
    "ssim_image_utility",
]


class UtilityFunction:
    """Base class: monotone quality curve over the block-prefix fraction."""

    def __call__(self, fraction: float) -> float:
        """Utility of having ``fraction`` of a response's blocks."""
        raise NotImplementedError

    def gains(self, num_blocks: int) -> np.ndarray:
        """Per-block utility gains ``g(1..Nb)`` for an Nb-block response.

        ``gains(Nb)[j-1] == U(j/Nb) - U((j-1)/Nb)``; they sum to ``U(1)``.
        """
        if num_blocks < 1:
            raise ValueError(f"num_blocks must be >= 1 (got {num_blocks})")
        fractions = np.arange(num_blocks + 1) / num_blocks
        values = np.array([self(f) for f in fractions])
        return np.diff(values)

    def validate(self, samples: int = 101) -> None:
        """Check the §3.3 contract: U(0)=0, U(1)<=1, monotone, in range."""
        xs = np.linspace(0.0, 1.0, samples)
        values = np.array([self(x) for x in xs])
        if abs(values[0]) > 1e-12:
            raise ValueError(f"U(0) must be 0 (got {values[0]})")
        if values[-1] > 1.0 + 1e-12:
            raise ValueError(f"U(1) must be <= 1 (got {values[-1]})")
        if (np.diff(values) < -1e-12).any():
            raise ValueError("utility function must be monotonically non-decreasing")
        if (values < -1e-12).any() or (values > 1 + 1e-12).any():
            raise ValueError("utility values must lie in [0, 1]")


class LinearUtility(UtilityFunction):
    """The system default: every block contributes equal utility."""

    def __call__(self, fraction: float) -> float:
        return float(min(max(fraction, 0.0), 1.0))

    def __repr__(self) -> str:
        return "LinearUtility()"


class PowerUtility(UtilityFunction):
    """``U(x) = x ** exponent``; exponent < 1 gives a concave curve.

    A compact stand-in for diminishing-returns encodings (progressive
    images, top-k samples) when no measured curve is available.
    """

    def __init__(self, exponent: float) -> None:
        if exponent <= 0:
            raise ValueError(f"exponent must be positive (got {exponent})")
        self.exponent = exponent

    def __call__(self, fraction: float) -> float:
        x = min(max(fraction, 0.0), 1.0)
        return float(x**self.exponent)

    def __repr__(self) -> str:
        return f"PowerUtility(exponent={self.exponent!r})"


class PiecewiseUtility(UtilityFunction):
    """Linear interpolation through measured ``(fraction, utility)`` points.

    This is how an application turns an empirical quality study (e.g.,
    structural similarity of progressive-JPEG prefixes over a sample of
    images, §3.4) into a utility function.
    """

    def __init__(self, points: Sequence[tuple[float, float]]) -> None:
        pts = sorted(points)
        if len(pts) < 2:
            raise ValueError("need at least two points")
        xs = np.array([p[0] for p in pts], dtype=float)
        ys = np.array([p[1] for p in pts], dtype=float)
        if xs[0] != 0.0 or xs[-1] != 1.0:
            raise ValueError("points must span fractions 0.0 .. 1.0")
        if len(np.unique(xs)) != len(xs):
            raise ValueError("fractions must be distinct")
        if (np.diff(ys) < 0).any():
            raise ValueError("utilities must be non-decreasing")
        if ys[0] != 0.0:
            raise ValueError("U(0) must be 0")
        if ys[-1] > 1.0:
            raise ValueError("U(1) must be <= 1")
        self._xs = xs
        self._ys = ys

    def __call__(self, fraction: float) -> float:
        x = min(max(fraction, 0.0), 1.0)
        return float(np.interp(x, self._xs, self._ys))

    def __repr__(self) -> str:
        pts = list(zip(self._xs.tolist(), self._ys.tolist()))
        return f"PiecewiseUtility({pts!r})"


def ssim_image_utility() -> PiecewiseUtility:
    """The image application's utility curve (Fig. 3, red line).

    The paper derives it from the average structural similarity [76]
    between a progressive-JPEG prefix and the full image: quality rises
    steeply over the first quarter of the blocks and saturates.  These
    control points trace the published curve.
    """
    return PiecewiseUtility(
        [
            (0.00, 0.00),
            (0.02, 0.30),
            (0.05, 0.48),
            (0.10, 0.62),
            (0.15, 0.70),
            (0.25, 0.80),
            (0.40, 0.88),
            (0.50, 0.92),
            (0.75, 0.97),
            (1.00, 1.00),
        ]
    )

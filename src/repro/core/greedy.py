"""Greedy scheduler (§5.3, Listing 1).

Khameleon's production scheduler.  Per batch of ``C`` blocks (the
client cache size), it repeatedly

1. computes each candidate's expected utility gain for receiving one
   more block — the probability the user still wants the request over
   the rest of the batch, times the marginal gain ``g(b+1)`` of its
   next block — and
2. samples a request proportionally to those gains, allocating it the
   next block.

The remaining-batch probability ``P_{i,t} = Σ_{k=t}^{C-1} P(q_i | k)``
is precomputed as a matrix per distribution update (a reverse
cumulative sum approximating the paper's trapezoidal Riemann sum), so
each allocation is a vectorized dot-and-sample over the explicit
requests.

**Meta-request optimization** (§5.3.1): with 10k possible requests,
most share the same ≈ 0 probability.  Those pool into one
*meta-request* whose probability is their sum; sampling it uniformly
picks a concrete request, which is then *promoted* to individual
tracking for the rest of the batch.  Disable with
``meta_request=False`` to measure the difference (the paper reports
13× on its 10k-request benchmark).

**Sampler modes.**  ``sampler`` selects how :meth:`schedule_batch`
draws:

* ``"reference"`` — the scalar Listing-1 loop (:meth:`next_block`),
  re-deriving the per-draw weight vector from the pending/mirror
  dictionaries every call.
* ``"vectorized"`` (default) — the production fast path: per-request
  block counts and next-block gains live in incrementally-maintained
  numpy arrays (fed by allocations, ``on_sent`` confirmations,
  rollbacks, and mirror evictions), so each draw is a handful of
  vectorized kernels over the materialized requests.  Consumes the
  same RNG stream as the reference and produces **bit-identical**
  schedules at every seed — the scalar path is the specification the
  fast path is property-tested against.
* ``"fenwick"`` — sublinear draws via the **horizon forest**.  Every
  slot's probability row is a convex combination of the distribution's
  ``k`` horizon rows (:meth:`RequestDistribution.horizon_weights`), so
  the whole remaining-batch matrix factors into ``k`` fixed
  per-horizon mass vectors weighted by per-slot scalar coefficients
  (their reverse cumulative sum).  The sampler therefore keeps one
  Fenwick (binary indexed) tree per horizon over ``gain x per-horizon
  mass`` — a forest of at most ``k`` trees, maintained by the same
  allocation / ``on_sent`` / rollback / mirror-evict hooks that feed
  the gain arrays, and rebuilt lazily on the first draw after a
  distribution swap — and answers *every* draw, head and tail alike,
  with one O(k log m) prefix descent over the coefficient-weighted
  trees plus one O(k log m) point update.  Past the last horizon only
  one coefficient survives, so tail draws degenerate to the single
  tree of PR 4; trees whose horizon has expired (no remaining slot
  references it) skip their point updates.  No draw ever falls back to
  the O(m) vectorized kernel — ``draw_counts`` records which kernel
  served each draw so tests can assert exactly that.  **RNG-stream
  tradeoff**: the forest consumes uniforms against differently-rounded
  totals than the cumsum path, so fenwick schedules are
  *statistically* equivalent (chi-squared-tested per-draw frequencies
  for head and tail draws, utility within epsilon on the Fig. 16/17
  workloads) but not bit-identical to the other two modes — pick it
  for throughput, not for replaying golden schedules.

Deviation from Listing 1, documented in DESIGN.md §5: the pseudocode
resets per-request block counts ``B`` to zero every batch and ignores
what the client already caches.  We additionally consult the server's
cache mirror (exactly mirrorable thanks to the FIFO client cache) so
that (a) block *indices* continue the prefix the client already has
instead of resending block 0, and (b) fully cached requests get zero
gain.  §5's problem statement requires the scheduler to "keep track of
previously sent blocks"; this is that tracking.
"""

from __future__ import annotations

from typing import Optional, Sequence

import numpy as np

from .cache import RingBufferCache
from .distribution import RequestDistribution
from .scheduler import GainTable, ScheduledBlock

__all__ = ["GreedyScheduler", "probability_matrices", "SAMPLER_MODES"]

#: Valid ``GreedyScheduler(sampler=...)`` values (see module docstring).
SAMPLER_MODES = ("reference", "vectorized", "fenwick")


def probability_matrices(
    dist: RequestDistribution,
    cache_blocks: int,
    position: int,
    slot_duration_s: float,
    gamma: float = 1.0,
) -> tuple[np.ndarray, np.ndarray]:
    """Materialize ``(Pmat, Pres)`` for a batch's remaining slots.

    Row ``k`` of ``Pmat`` holds the γ-discounted probability mass of
    each explicit request over slots ``k..C-1``, where slot ``k`` maps
    to wall-clock offset ``(k − position + 1) · slot_duration``;
    ``Pres`` is the matching residual-mass column (Listing 1 lines
    6–11).  Rows before ``position`` are zero — those slots were
    already decided.

    Module-level so the fleet's batched recompute
    (:class:`~repro.fleet.FleetScheduleService`) can produce the same
    matrices in one stacked pass; its output must stay bit-identical
    to this per-scheduler path.
    """
    C, t = cache_blocks, position
    remaining = C - t
    m = len(dist.explicit_ids)
    if remaining <= 0:
        return np.zeros((C, m)), np.zeros(C)
    deltas = (np.arange(t, C) - t + 1) * slot_duration_s
    probs, residual = dist.explicit_matrix(deltas)
    if gamma < 1.0:
        discount = gamma ** np.arange(t, C)
        probs = probs * discount[:, None]
        residual = residual * discount
    # Reverse cumulative sum: row k = mass over slots k..C-1.
    pmat = np.zeros((C, probs.shape[1]))
    pres = np.zeros(C)
    pmat[t:] = np.cumsum(probs[::-1], axis=0)[::-1]
    pres[t:] = np.cumsum(residual[::-1])[::-1]
    return pmat, pres


class GreedyScheduler:
    """Single-step-horizon sampling scheduler with batch resets.

    Parameters
    ----------
    gains:
        Per-request utility gain table (defines ``n`` and ``Nb_i``).
    cache_blocks:
        ``C`` — client cache capacity in blocks; also the batch length.
    gamma:
        Future discount applied inside the remaining-batch probability
        (``γ^k`` weights; 1.0 = the paper's default behaviour).
    mirror:
        Optional server-side replica of the client ring buffer.  When
        given, allocations extend the cached prefix.
    meta_request:
        Enable the §5.3.1 uniform-mass pooling (default True).
    hedge_when_idle:
        When every tracked request has zero expected gain (e.g., a point
        distribution whose target is fully scheduled), push blocks for
        uniformly random incomplete requests instead of idling — §3.4:
        "use the remaining bandwidth to push random images for the
        client to cache".
    sampler:
        Which draw kernel :meth:`schedule_batch` uses — one of
        :data:`SAMPLER_MODES` (see the module docstring for the
        bit-identical vs statistically-equivalent contract).
    seed:
        Sampling is stochastic (Listing 1 line 17); fixed seed for
        reproducibility.
    """

    def __init__(
        self,
        gains: GainTable,
        cache_blocks: int,
        gamma: float = 1.0,
        mirror: Optional[RingBufferCache] = None,
        meta_request: bool = True,
        hedge_when_idle: bool = True,
        sampler: str = "vectorized",
        seed: int = 0,
    ) -> None:
        if cache_blocks < 1:
            raise ValueError("cache must hold at least one block")
        if not 0 <= gamma <= 1:
            raise ValueError("gamma must lie in [0, 1]")
        if sampler not in SAMPLER_MODES:
            raise ValueError(f"sampler {sampler!r} not in {SAMPLER_MODES}")
        self.sampler = sampler
        self._fenwick = sampler == "fenwick"
        self.gains = gains
        self.C = cache_blocks
        self.gamma = gamma
        self.mirror = mirror
        self.meta_request = meta_request
        self.hedge_when_idle = hedge_when_idle
        self._rng = np.random.default_rng(seed)

        self._dist = RequestDistribution.uniform(gains.n)
        self._slot_duration_s = 0.01
        # Batch position (Listing 1's t).
        self._t = 0
        # Blocks allocated but not yet confirmed sent.  With a mirror,
        # the sender confirms via on_sent() as blocks hit the wire (the
        # mirror then carries them); without one, pending *is* Listing
        # 1's B and resets with the batch.
        self._pending: dict[int, int] = {}
        # Distribution-derived state.
        self._ids = np.empty(0, dtype=np.int64)
        self._Pmat = np.empty((0, 0))
        self._Pres = np.empty(0)
        self._explicit_set: set[int] = set()
        self._explicit_ids_ref: Optional[np.ndarray] = None
        self._promoted: list[int] = []
        self._promoted_set: set[int] = set()
        # Materialized-request fast-path state: parallel arrays over
        # explicit-then-promoted ids, updated incrementally so the
        # batch sampler never walks the pending/mirror dicts per draw.
        self._mat_ids = np.empty(0, dtype=np.int64)
        self._have = np.empty(0, dtype=np.int64)
        self._gain = np.empty(0)
        self._wbuf = np.empty(0)
        self._cbuf = np.empty(0)
        self._mlen = 0
        self._pos_of: dict[int, int] = {}
        # Horizon-forest state (inert unless sampler == "fenwick"): one
        # Fenwick tree per prediction horizon over gain x per-horizon
        # mass, the per-slot coefficient rows that combine them, and
        # per-horizon expiry slots past which a tree skips updates.
        # Rebuilt lazily (on the first draw after `_forest_dirty`).
        self._fen_trees: list[list[float]] = []
        self._fen_leaves: list[list[float]] = []
        self._fen_base: list[list[float]] = []
        self._fen_totals: list[float] = []
        self._fen_size = 0
        self._uni_h: list[float] = []
        self._slot_pairs: list[tuple] = []
        self._slot_uni: list[float] = []
        self._live_pairs: tuple = ()
        self._forest_dirty = True
        self._tail_start = 0
        # Tail fast path: once every non-final horizon has expired the
        # active set is a single tree for the rest of the epoch, so the
        # per-draw pair indirection is hoisted into direct references.
        self._tail_mode = False
        self._tail_h = -1
        self._tail_tree: list[float] = []
        self._tail_leaves: list[float] = []
        self._tail_base: list[float] = []
        self._tail_uni = 0.0
        #: Draws served per kernel ("reference" scalar loop, "vectorized"
        #: cumsum kernel, "forest" Fenwick descent) — lets tests assert
        #: the fenwick mode never falls back to an O(m) draw.
        self.draw_counts = {"reference": 0, "vectorized": 0, "forest": 0}
        if mirror is not None:
            mirror.add_evict_listener(self._on_mirror_evict)
        self._recompute_probabilities()

        self.schedules_generated = 0
        self.blocks_allocated = 0

    # -- public API ----------------------------------------------------

    def update_distribution(
        self, dist: RequestDistribution, slot_duration_s: float
    ) -> None:
        """Install a new prediction (client may send them at any time).

        Already-allocated slots of the current batch are untouched
        (§5.3.2: blocks 0..i were sent); only the remaining ``C − t``
        slots use the new probabilities.
        """
        if dist.n != self.gains.n:
            raise ValueError(f"distribution over {dist.n} requests, expected {self.gains.n}")
        if slot_duration_s <= 0:
            raise ValueError("slot duration must be positive")
        self._dist = dist
        self._slot_duration_s = slot_duration_s
        self._recompute_probabilities()

    def install_distribution(
        self,
        dist: RequestDistribution,
        slot_duration_s: float,
        pmat: np.ndarray,
        pres: np.ndarray,
    ) -> None:
        """:meth:`update_distribution` with externally computed matrices.

        The fleet's :class:`~repro.fleet.FleetScheduleService` computes
        every registered session's probability matrices in one stacked
        pass and installs them here.  ``(pmat, pres)`` must equal what
        :func:`probability_matrices` would return for this scheduler's
        current ``(C, position, slot_duration)`` — the caller owns that
        contract (it is equivalence-tested in the fleet suite).
        """
        if dist.n != self.gains.n:
            raise ValueError(f"distribution over {dist.n} requests, expected {self.gains.n}")
        if slot_duration_s <= 0:
            raise ValueError("slot duration must be positive")
        expected = (self.C, len(dist.explicit_ids))
        if pmat.shape != expected or pres.shape != (self.C,):
            # Reject before touching any state: a half-installed epoch
            # (new ids, old matrices) would corrupt later draws.
            raise ValueError(
                f"matrices shaped {pmat.shape}/{pres.shape}, "
                f"expected {expected}/{(self.C,)}"
            )
        self._dist = dist
        self._slot_duration_s = slot_duration_s
        self._refresh_epoch()
        self._Pmat = pmat
        self._Pres = pres

    def next_block(self) -> Optional[ScheduledBlock]:
        """Sample the next allocation (Listing 1 lines 14–19).

        Scalar reference path: weights are re-derived from the pending
        and mirror dictionaries on every call.  :meth:`schedule_batch`
        draws the same RNG stream over incrementally-maintained arrays
        and is bit-identical; prefer it on hot paths.
        """
        if self._t >= self.C:
            self._reset_batch()
        self.draw_counts["reference"] += 1
        ids = self._all_ids()
        weights = self._utility_gains(ids)
        meta_weight = self._meta_weight()
        total = weights.sum() + meta_weight
        if total <= 1e-15:
            if not self.hedge_when_idle:
                return None
            request = self._sample_incomplete_request()
            if request is None:
                return None
            return self._allocate(request)
        # Sample a request proportional to utility gain (line 17).
        u = self._rng.random() * total
        cumulative = np.cumsum(weights)
        pos = int(np.searchsorted(cumulative, u, side="right"))
        if pos < len(ids):
            request = int(ids[pos])
        else:
            request = self._sample_uniform_request()
            if request is None:
                return None
            self._promote(request)
        return self._allocate(request)

    def schedule_batch(self, max_blocks: Optional[int] = None) -> list[ScheduledBlock]:
        """Allocate up to ``max_blocks`` (default: the rest of the batch).

        This is Listing 1's inner loop with ``bs = max_blocks``, drawn
        through the configured ``sampler`` kernel.  On the default
        vectorized path the weight vector's gain factor is materialized
        once per distribution epoch and only the sampled request's
        entry changes between draws, so each allocation costs a few
        numpy kernels over the materialized requests instead of a
        Python walk over the pending/mirror dicts; the fenwick path
        drops even that to O(log m) for tail draws.  The sender's
        lookahead fill and the standalone micro-benchmarks (Fig. 16)
        call it directly.
        """
        limit = self.C - self._t if max_blocks is None else max_blocks
        if self._fenwick:
            draw = self._next_block_fenwick
        elif self.sampler == "reference":
            draw = self.next_block
        else:
            draw = self._next_block_fast
        out: list[ScheduledBlock] = []
        while len(out) < limit:
            if self._t >= self.C:
                self._reset_batch()
            block = draw()
            if block is None:
                break
            out.append(block)
        return out

    def rollback(
        self, blocks: Sequence[ScheduledBlock], recompute: bool = True
    ) -> None:
        """Un-allocate scheduled-but-unsent blocks (sender preemption).

        §5.3.2: when a new prediction arrives, the schedule past the
        sender's position is discarded and regenerated.  The sender
        hands back the unsent tail; we rewind ``t`` and the per-request
        counts so the slots are re-decided under the new distribution.

        ``recompute=False`` skips re-materializing the probability
        matrices and fast-path arrays; it is for callers that install a
        fresh distribution immediately afterwards (the fleet service's
        batched tick) — no draws may happen in between.
        """
        for block in blocks:
            have = self._pending.get(block.request, 0)
            if have <= 0:
                raise ValueError(f"cannot roll back {block}: not allocated")
            if have == 1:
                del self._pending[block.request]
                # A request promoted out of the meta pool in a slot that
                # is now rolled back has no allocation left backing the
                # promotion: return it to the pool so it stops carrying
                # an individual probability weight until the batch reset.
                # Blocks already sent (mirror-held) still back it — the
                # concrete next-block gain must survive for requests the
                # client holds a prefix of.
                if (
                    block.request in self._promoted_set
                    and self._effective_blocks(block.request) == 0
                ):
                    self._promoted.remove(block.request)
                    self._promoted_set.discard(block.request)
            else:
                self._pending[block.request] = have - 1
            self._t = max(0, self._t - 1)
            self.blocks_allocated -= 1
        # The rewound slots need probability rows again (they were only
        # materialized from the position at the last distribution update).
        if blocks and recompute:
            self._recompute_probabilities()

    def on_sent(self, block: ScheduledBlock) -> None:
        """Sender confirmation that ``block`` reached the wire.

        Only meaningful with a mirror: the block is now tracked by the
        mirrored client cache, so the pending overlay must release it
        (otherwise it would be double-counted).
        """
        if self.mirror is None:
            return
        have = self._pending.get(block.request, 0)
        if have <= 0:
            raise ValueError(f"on_sent for unallocated block {block}")
        if have == 1:
            del self._pending[block.request]
        else:
            self._pending[block.request] = have - 1
        self._refresh_entry(block.request)

    # -- introspection ---------------------------------------------------

    @property
    def position(self) -> int:
        """Slots allocated in the current batch (Listing 1's ``t``)."""
        return self._t

    @property
    def materialized_fraction(self) -> float:
        """Fraction of requests with individually materialized probabilities."""
        return (len(self._ids) + len(self._promoted)) / self.gains.n

    def rng_state(self) -> dict:
        """The draw RNG's bit-generator state (JSON-safe plain ints).

        Sampling is the only stochastic step in the scheduler, so this
        state plus the deterministic inputs pins the whole draw stream —
        it is what shard checkpoints digest to verify that a replayed
        worker really is where the crashed one was.
        """
        return self._rng.bit_generator.state

    # -- internals -------------------------------------------------------

    def _reset_batch(self) -> None:
        """Lines 22–23: after C blocks, reset t and B.

        With a mirror, pending blocks are still in the sender pipeline
        and must survive the reset (the mirror will absorb them as they
        are sent); without one, pending is the per-batch B and clears.
        """
        self._t = 0
        if self.mirror is None:
            self._pending.clear()
        self._promoted.clear()
        self._promoted_set.clear()
        self.schedules_generated += 1
        self._recompute_probabilities()

    def _recompute_probabilities(self) -> None:
        """Start a distribution epoch: refresh ids/arrays, rebuild P."""
        self._refresh_epoch()
        self._Pmat, self._Pres = probability_matrices(
            self._dist, self.C, self._t, self._slot_duration_s, self.gamma
        )

    def _refresh_epoch(self) -> None:
        """Re-derive the materialized-request state from the distribution.

        The explicit-id set is cached against the distribution's own
        ids array (rollbacks and batch resets reuse the same
        distribution object, so the set survives those epochs), and the
        promoted list is only re-filtered when it would actually
        change.
        """
        ids = self._dist.explicit_ids
        if ids is not self._explicit_ids_ref:
            self._explicit_set = set(int(i) for i in ids)
            self._explicit_ids_ref = ids
        self._ids = ids
        if self._promoted:
            kept = [q for q in self._promoted if q not in self._explicit_set]
            if len(kept) != len(self._promoted):
                self._promoted = kept
                self._promoted_set = set(kept)
        self._rebuild_materialized()

    def _ensure_capacity(self, needed: int) -> None:
        if len(self._mat_ids) >= needed:
            return
        cap = max(needed + 64, 2 * len(self._mat_ids))
        for name in ("_mat_ids", "_have"):
            grown = np.empty(cap, dtype=np.int64)
            old = getattr(self, name)
            grown[: len(old)] = old
            setattr(self, name, grown)
        for name in ("_gain", "_wbuf", "_cbuf"):
            grown = np.empty(cap)
            old = getattr(self, name)
            grown[: len(old)] = old
            setattr(self, name, grown)

    def _rebuild_materialized(self) -> None:
        """Rebuild the fast-path arrays (once per distribution epoch)."""
        m = len(self._ids)
        mlen = m + len(self._promoted)
        self._ensure_capacity(mlen)
        ids = self._mat_ids
        ids[:m] = self._ids
        if self._promoted:
            ids[m:mlen] = self._promoted
        self._mlen = mlen
        self._pos_of = {int(r): i for i, r in enumerate(ids[:mlen])}
        if mlen:
            if self.mirror is None and not self._pending:
                self._have[:mlen] = 0
            else:
                self._have[:mlen] = np.fromiter(
                    (self._effective_blocks(int(r)) for r in ids[:mlen]),
                    dtype=np.int64,
                    count=mlen,
                )
            self._gain[:mlen] = self.gains.gain_vector(ids[:mlen], self._have[:mlen])
        if self._fenwick:
            # Lazy: the forest (trees, slot coefficients, expiries) is
            # rebuilt on the first draw that needs it, so back-to-back
            # distribution swaps with no draws in between pay nothing.
            self._forest_dirty = True

    def _refresh_entry(self, request: int) -> None:
        """Re-derive one materialized request's block count and gain."""
        pos = self._pos_of.get(request)
        if pos is None:
            return
        effective = self._effective_blocks(request)
        self._have[pos] = effective
        self._gain[pos] = self.gains.gain(request, effective)
        if self._fenwick:
            self._fen_update(pos)

    def _on_mirror_evict(self, request: Optional[int]) -> None:
        """Mirror replaced a live block: that request's prefix may have
        shrunk.  ``None`` means the mirror was cleared wholesale."""
        if request is None:
            self._rebuild_materialized()
        else:
            self._refresh_entry(request)

    def _all_ids(self) -> np.ndarray:
        if not self._promoted:
            return self._ids
        return np.concatenate([self._ids, np.array(self._promoted, dtype=np.int64)])

    def _effective_blocks(self, request: int) -> int:
        """Blocks the client will hold once the pipeline drains."""
        base = self.mirror.prefix_len(request) if self.mirror is not None else 0
        return base + self._pending.get(request, 0)

    def _utility_gains(self, ids: np.ndarray) -> np.ndarray:
        """Line 16: u = P_t · g[B] over explicit + promoted requests."""
        t = min(self._t, self.C - 1)
        m = len(self._ids)
        if len(ids) == 0:
            return np.empty(0)
        probs = np.full(len(ids), self._uniform_request_prob(t))
        probs[:m] = self._Pmat[t, :m]
        have = np.fromiter(
            (self._effective_blocks(int(r)) for r in ids), dtype=np.int64, count=len(ids)
        )
        return probs * self.gains.gain_vector(ids, have)

    def _next_block_fast(self) -> Optional[ScheduledBlock]:
        """One draw over the incrementally-maintained arrays.

        Mirrors :meth:`next_block` operation-for-operation (same array
        lengths, same elementwise kernels, same RNG consumption) so the
        sampled schedule is bit-identical to the scalar path.
        """
        self.draw_counts["vectorized"] += 1
        t = min(self._t, self.C - 1)
        m = len(self._ids)
        mlen = self._mlen
        wv = self._wbuf[:mlen]
        if m:
            np.multiply(self._Pmat[t, :m], self._gain[:m], out=wv[:m])
        if mlen > m:
            np.multiply(
                self._gain[m:mlen], self._uniform_request_prob(t), out=wv[m:mlen]
            )
        meta_weight = self._meta_weight()
        total = (wv.sum() if mlen else 0.0) + meta_weight
        if total <= 1e-15:
            if not self.hedge_when_idle:
                return None
            request = self._sample_incomplete_request()
            if request is None:
                return None
            return self._allocate(request)
        u = self._rng.random() * total
        cv = self._cbuf[:mlen]
        np.cumsum(wv, out=cv)
        pos = int(np.searchsorted(cv, u, side="right"))
        if pos < mlen:
            request = int(self._mat_ids[pos])
        else:
            request = self._sample_uniform_request()
            if request is None:
                return None
            self._promote(request)
        return self._allocate(request)

    # -- horizon-forest sampler -------------------------------------------
    #
    # Every slot's probability row is a convex combination of the k
    # horizon rows (``RequestDistribution.horizon_weights``), so the
    # remaining-batch mass ``Pmat[t] = sum_h A[t, h] * probs[h]`` where
    # ``A`` is the reverse cumulative sum of the per-slot coefficient
    # rows (discounted by gamma like the matrices themselves).  One
    # Fenwick tree per horizon over ``gain x probs[h]`` therefore
    # answers *any* slot's draw: the per-request weight at slot t is the
    # coefficient-weighted sum of the trees' leaves, prefix sums add,
    # and a descent over the combined node values finds the sampled
    # leaf in O(k log m).  Past the last horizon a single coefficient
    # survives and — since only proportions matter to the draw — it is
    # dropped entirely, recovering PR 4's one-tree tail arithmetic.
    # The trees live in plain Python lists: descents index them
    # scalar-by-scalar, where list access is several times cheaper than
    # numpy scalar indexing.

    def _forest_build(self) -> None:
        """(Re)build trees, slot coefficients, and expiries — O(k(m + C))."""
        self._forest_dirty = False
        self._tail_mode = False
        dist = self._dist
        C, t0 = self.C, self._t
        k = len(dist.deltas_s)
        m, mlen = len(self._ids), self._mlen
        pool = self.gains.n - m
        uni = dist.residual / pool if pool > 0 else np.zeros(k)
        self._uni_h = uni.tolist()
        gain = self._gain[:mlen]
        trees: list[list[float]] = []
        leaves: list[list[float]] = []
        base_rows: list[list[float]] = []
        totals: list[float] = []
        idx = np.arange(1, mlen + 1)
        low = idx - (idx & -idx)
        row = np.empty(mlen)
        for h in range(k):
            row[:m] = dist.explicit_probs[h]
            if mlen > m:
                row[m:] = uni[h]
            base_rows.append(row.tolist())
            values = gain * row
            prefix = np.concatenate(([0.0], np.cumsum(values)))
            trees.append([0.0] + (prefix[idx] - prefix[low]).tolist())
            leaves.append(values.tolist())
            totals.append(float(prefix[mlen]))
        self._fen_trees = trees
        self._fen_leaves = leaves
        self._fen_base = base_rows
        self._fen_totals = totals
        self._fen_size = mlen
        rem = C - t0
        if rem <= 0:
            self._slot_pairs = [()] * max(C, 1)
            self._slot_uni = [0.0] * max(C, 1)
            self._live_pairs = ()
            self._tail_start = C
            return
        offsets = (np.arange(t0, C) - t0 + 1) * self._slot_duration_s
        coeff = dist.horizon_weights(offsets)
        if self.gamma < 1.0:
            coeff = coeff * (self.gamma ** np.arange(t0, C))[:, None]
        A = np.zeros((C, k))
        A[t0:] = np.cumsum(coeff[::-1], axis=0)[::-1]
        # Per-slot active (horizon, coefficient) pairs plus the slot's
        # uniform-request probability, built once per epoch so a draw is
        # pure lookups.  Because the coefficients are suffix sums, a
        # horizon is in slot t's pairs iff some slot >= t references it
        # — the pairs double as the point-update live set.  Single-pair
        # slots drop the common coefficient (only proportions matter),
        # which recovers PR 4's raw one-tree tail arithmetic.
        uni_list = self._uni_h
        pairs_list: list[tuple] = [()] * C
        slot_uni = [0.0] * C
        for t, row in enumerate(A[t0:].tolist(), start=t0):
            pairs = tuple((h, c) for h, c in enumerate(row) if c > 0.0)
            pairs_list[t] = pairs
            if len(pairs) == 1:
                slot_uni[t] = uni_list[pairs[0][0]]
            else:
                slot_uni[t] = sum(c * uni_list[h] for h, c in pairs)
        self._slot_pairs = pairs_list
        self._slot_uni = slot_uni
        self._live_pairs = pairs_list[min(t0, C - 1)]
        _head, tail = dist.clamp_split(offsets)
        self._tail_start = t0 + tail

    def _fen_prefix(self, h: int, i: int) -> float:
        tree = self._fen_trees[h]
        s = 0.0
        while i > 0:
            s += tree[i]
            i -= i & -i
        return s

    def _fen_update(self, pos: int) -> None:
        """Refresh leaf ``pos`` in every live tree, O(k log m).

        ``_live_pairs`` is the last drawn slot's active set: a horizon
        appears in ``_slot_pairs[t]`` iff some slot ``>= t`` still
        references it (the coefficients are suffix sums), and ``t`` is
        nondecreasing between rebuilds, so the set is always a superset
        of every later slot's — expired trees go stale safely (their
        coefficient is exactly zero wherever they would be read).  Tail
        slots therefore pay a single-tree update, like PR 4.
        """
        if self._forest_dirty or pos >= self._fen_size:
            return
        g = float(self._gain[pos])
        n = self._fen_size
        i0 = pos + 1
        if self._tail_mode:
            # Single live tree with hoisted references: PR 4's raw
            # one-tree update, no pair iteration or forest indexing.
            value = g * self._tail_base[pos]
            leaves = self._tail_leaves
            delta = value - leaves[pos]
            if delta == 0.0:
                return
            leaves[pos] = value
            tree = self._tail_tree
            i = i0
            while i <= n:
                tree[i] += delta
                i += i & -i
            self._fen_totals[self._tail_h] += delta
            return
        for h, _c in self._live_pairs:
            value = g * self._fen_base[h][pos]
            leaves = self._fen_leaves[h]
            delta = value - leaves[pos]
            if delta == 0.0:
                continue
            leaves[pos] = value
            tree = self._fen_trees[h]
            i = i0
            while i <= n:
                tree[i] += delta
                i += i & -i
            self._fen_totals[h] += delta

    def _fen_append(self, h: int, value: float) -> None:
        """Append a leaf to tree ``h`` at index ``_fen_size + 1``.

        The caller bumps ``_fen_size`` once after appending to every
        tree (leaf counts must stay aligned across the forest).
        """
        i = self._fen_size + 1
        low = i & -i
        s = value
        if low > 1:
            # Node i covers leaves (i-low, i]; fold in the ones that
            # already exist.
            s += self._fen_prefix(h, i - 1) - self._fen_prefix(h, i - low)
        self._fen_trees[h].append(s)
        self._fen_leaves[h].append(value)
        self._fen_totals[h] += value

    def _forest_sample(self, u: float, pairs: list[tuple[int, float]]) -> int:
        """Leaf index (0-based) whose combined prefix interval holds ``u``.

        ``pairs`` is the slot's active ``(horizon, coefficient)`` list;
        node values are the coefficient-weighted sums across trees.
        Returns ``_fen_size`` when ``u`` lies at or beyond the true
        prefix sum — the separately-accumulated totals can drift a few
        ULP above it, and such a draw must fall through to the meta
        branch exactly as the cumsum kernel's ``searchsorted`` overshoot
        does (clamping it to the last leaf could allocate a block for a
        zero-weight, fully-cached request).
        """
        trees = self._fen_trees
        n = self._fen_size
        pos = 0
        bit = 1 << (n.bit_length() - 1)
        if len(pairs) == 1:
            # Tail (or single-horizon) slots: one live tree, and the
            # caller already dropped the common coefficient.
            tree = trees[pairs[0][0]]
            while bit:
                nxt = pos + bit
                if nxt <= n and tree[nxt] <= u:
                    u -= tree[nxt]
                    pos = nxt
                bit >>= 1
            return pos
        while bit:
            nxt = pos + bit
            if nxt <= n:
                s = 0.0
                for h, c in pairs:
                    s += c * trees[h][nxt]
                if s <= u:
                    u -= s
                    pos = nxt
            bit >>= 1
        return pos

    def _enter_tail(self, t: int) -> None:
        """Hoist the tail's single live tree into direct references.

        ``_t`` is nondecreasing between rebuilds, so once a draw lands
        at or past ``_tail_start`` every later draw of the epoch does
        too: the slot's pair set is the final horizon alone (with its
        common coefficient already dropped) and its uniform probability
        is constant.  Caching them turns each remaining draw and point
        update into PR 4's single-tree arithmetic — same totals, same
        descent, identical RNG consumption — with zero per-draw
        indirection through ``_slot_pairs``/``_live_pairs``.
        """
        pairs = self._slot_pairs[t]
        if len(pairs) != 1:  # defensive: tail slots always have one pair
            return
        self._live_pairs = pairs
        h = pairs[0][0]
        self._tail_h = h
        self._tail_tree = self._fen_trees[h]
        self._tail_leaves = self._fen_leaves[h]
        self._tail_base = self._fen_base[h]
        self._tail_uni = self._slot_uni[t]
        self._tail_mode = True

    def _next_block_fenwick_tail(self) -> Optional[ScheduledBlock]:
        """Tail-epoch draw: one tree, no coefficient pairs (PR 4 path)."""
        self.draw_counts["forest"] += 1
        gains = self.gains
        total_explicit = self._fen_totals[self._tail_h]
        meta_weight = 0.0
        if self.meta_request:
            n_meta = gains.n - len(self._ids) - len(self._promoted)
            if n_meta > 0:
                meta_weight = self._tail_uni * n_meta * gains.mean_first_gain
        total = total_explicit + meta_weight
        if total <= 1e-15:
            if not self.hedge_when_idle:
                return None
            request = self._sample_incomplete_request()
            if request is None:
                return None
            return self._allocate(request)
        u = self._rng.random() * total
        n = self._fen_size
        pos = n
        if u < total_explicit and n:
            tree = self._tail_tree
            pos = 0
            bit = 1 << (n.bit_length() - 1)
            while bit:
                nxt = pos + bit
                if nxt <= n and tree[nxt] <= u:
                    u -= tree[nxt]
                    pos = nxt
                bit >>= 1
        if pos < n:
            request = int(self._mat_ids[pos])
        else:
            request = self._sample_uniform_request()
            if request is None:
                return None
            self._promote(request)
        return self._allocate(request)

    def _next_block_fenwick(self) -> Optional[ScheduledBlock]:
        """One draw via the horizon forest — head and tail alike.

        Statistically equivalent to :meth:`next_block` — each draw
        samples the same per-request weight proportions — but consumes
        the RNG stream against differently-rounded totals, so the
        realized schedule differs (see the module docstring).
        """
        if self._forest_dirty:
            self._forest_build()
        if self._tail_mode:
            return self._next_block_fenwick_tail()
        t = min(self._t, self.C - 1)
        if t >= self._tail_start:
            self._enter_tail(t)
            if self._tail_mode:
                return self._next_block_fenwick_tail()
        self.draw_counts["forest"] += 1
        pairs = self._slot_pairs[t]
        self._live_pairs = pairs
        totals = self._fen_totals
        uni_prob = self._slot_uni[t]
        if len(pairs) == 1:
            total_explicit = totals[pairs[0][0]]
        else:
            total_explicit = 0.0
            for h, c in pairs:
                total_explicit += c * totals[h]
        meta_weight = 0.0
        if self.meta_request:
            n_meta = self._num_uniform()
            if n_meta > 0:
                meta_weight = uni_prob * n_meta * self.gains.mean_first_gain
        total = total_explicit + meta_weight
        if total <= 1e-15:
            if not self.hedge_when_idle:
                return None
            request = self._sample_incomplete_request()
            if request is None:
                return None
            return self._allocate(request)
        u = self._rng.random() * total
        pos = self._fen_size
        if u < total_explicit and self._fen_size:
            pos = self._forest_sample(u, pairs)
        if pos < self._fen_size:
            request = int(self._mat_ids[pos])
        else:
            request = self._sample_uniform_request()
            if request is None:
                return None
            self._promote(request)
        return self._allocate(request)

    def _num_uniform(self) -> int:
        return self.gains.n - len(self._ids) - len(self._promoted)

    def _uniform_request_prob(self, t: int) -> float:
        pool = self.gains.n - len(self._ids)
        if pool <= 0:
            return 0.0
        return float(self._Pres[t]) / pool

    def _meta_weight(self) -> float:
        """Pooled weight of all still-uniform requests (§5.3.1)."""
        if not self.meta_request:
            return 0.0
        n_meta = self._num_uniform()
        if n_meta <= 0:
            return 0.0
        t = min(self._t, self.C - 1)
        share = self._uniform_request_prob(t) * n_meta
        return share * self.gains.mean_first_gain

    def _sample_uniform_request(self) -> Optional[int]:
        """Uniformly pick a pooled request (rejection sampling).

        The explicit + promoted set is tiny next to ``n``, so rejection
        terminates almost immediately; a deterministic scan backstops
        adversarial cases.
        """
        n = self.gains.n
        taken = self._explicit_set
        promoted = self._promoted_set
        for _ in range(64):
            candidate = int(self._rng.integers(0, n))
            if candidate not in taken and candidate not in promoted:
                return candidate
        for candidate in range(n):
            if candidate not in taken and candidate not in promoted:
                return candidate
        return None

    def _promote(self, request: int) -> None:
        self._promoted.append(request)
        self._promoted_set.add(request)
        self._ensure_capacity(self._mlen + 1)
        i = self._mlen
        effective = self._effective_blocks(request)
        self._mat_ids[i] = request
        self._have[i] = effective
        self._gain[i] = self.gains.gain(request, effective)
        self._pos_of[request] = i
        self._mlen += 1
        if self._fenwick and not self._forest_dirty:
            g = float(self._gain[i])
            for h, uni in enumerate(self._uni_h):
                self._fen_base[h].append(uni)
                self._fen_append(h, g * uni)
            self._fen_size += 1

    def _sample_incomplete_request(self) -> Optional[int]:
        """Random request that still has unsent blocks (idle hedging)."""
        n = self.gains.n
        for _ in range(64):
            candidate = int(self._rng.integers(0, n))
            if self._effective_blocks(candidate) < self.gains.blocks_of(candidate):
                return candidate
        for candidate in range(n):
            if self._effective_blocks(candidate) < self.gains.blocks_of(candidate):
                return candidate
        return None

    def _allocate(self, request: int) -> ScheduledBlock:
        index = self._effective_blocks(request)
        self._pending[request] = self._pending.get(request, 0) + 1
        pos = self._pos_of.get(request)
        if pos is not None:
            self._have[pos] = index + 1
            self._gain[pos] = self.gains.gain(request, index + 1)
            if self._fenwick:
                self._fen_update(pos)
        self._t += 1
        self.blocks_allocated += 1
        return ScheduledBlock(request=request, index=index)

"""Tabular Q-learning scheduler — the §8 "Learning Improved Policies"
extension.

The paper closes by proposing reinforcement learning over the Eq. 2
MDP: states are cache contents, actions are "give the next block to
request i", rewards are the expected-utility gains.  This module
implements the suggestion at micro scale (the same instance sizes the
ILP handles) so the three schedulers — greedy, ILP-optimal, and
learned — can be compared on equal footing
(``benchmarks/test_ext_qlearning.py``).

Design notes
------------
* The state is the per-request block-count vector ``B`` compressed to a
  tuple (cache contents up to slot permutation, which is all the reward
  depends on), plus the batch position ``t``.
* Actions are request ids; the environment transition is
  deterministic: ``B[i] += 1``, ``t += 1``.
* The reward for allocating block ``j`` of request ``i`` in slot ``t``
  is the same tail-weighted utility gain the ILP objective uses, so a
  converged policy maximizes exactly Eq. 3.
* Training runs full-batch episodes with an ε-greedy behaviour policy;
  ε and the learning rate decay per episode.

This is deliberately *tabular*: the paper's challenge ("balance more
sophistication with the need to schedule the next block in real-time")
is about the gap between micro-instance optimality and 10k-request
production scale, and the benchmark makes that gap measurable.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from .distribution import RequestDistribution
from .scheduler import GainTable, ScheduledBlock

__all__ = ["QLearningScheduler", "QLearningConfig"]


@dataclass(frozen=True)
class QLearningConfig:
    """Training hyperparameters (defaults tuned for micro instances)."""

    episodes: int = 2_000
    learning_rate: float = 0.25
    learning_rate_decay: float = 0.999
    epsilon: float = 0.4
    epsilon_decay: float = 0.999
    gamma: float = 1.0
    seed: int = 0

    def __post_init__(self) -> None:
        if self.episodes < 1:
            raise ValueError("need at least one training episode")
        if not 0 < self.learning_rate <= 1:
            raise ValueError("learning rate must lie in (0, 1]")
        if not 0 <= self.epsilon <= 1:
            raise ValueError("epsilon must lie in [0, 1]")
        if not 0 <= self.gamma <= 1:
            raise ValueError("gamma must lie in [0, 1]")


class QLearningScheduler:
    """Learns a block-allocation policy for one prediction distribution.

    Usage mirrors the ILP scheduler: construct with the gain table and
    horizon, call :meth:`train` with a distribution, then
    :meth:`schedule_batch` to extract the learned schedule.
    """

    def __init__(
        self,
        gains: GainTable,
        cache_blocks: int,
        config: Optional[QLearningConfig] = None,
    ) -> None:
        if cache_blocks < 1:
            raise ValueError("cache must hold at least one block")
        self.gains = gains
        self.C = cache_blocks
        self.config = config or QLearningConfig()
        self._q: dict[tuple, np.ndarray] = {}
        self._reward: Optional[np.ndarray] = None  # [t, i, j] gain table
        self._rng = np.random.default_rng(self.config.seed)
        self.episodes_trained = 0

    # -- environment ---------------------------------------------------

    def _build_rewards(self, dist: RequestDistribution, slot_duration_s: float) -> None:
        """Tail-weighted utility gains, identical to the ILP's U tensor."""
        n, C = self.gains.n, self.C
        max_nb = int(self.gains.num_blocks.max())
        prob = np.empty((C, n))
        for t in range(1, C + 1):
            prob[t - 1] = dist.dense_at(t * slot_duration_s)
        discount = self.config.gamma ** np.arange(C)
        tail = np.cumsum((prob * discount[:, None])[::-1], axis=0)[::-1]
        reward = np.zeros((C, n, max_nb))
        for i in range(n):
            g = self.gains.gains_of(i)
            reward[:, i, : len(g)] = tail[:, i : i + 1] * g[None, :]
        self._reward = reward

    def _step_reward(self, t: int, request: int, have: int) -> float:
        assert self._reward is not None
        if have >= self.gains.blocks_of(request):
            return 0.0
        return float(self._reward[t, request, have])

    def _state_key(self, counts: np.ndarray, t: int) -> tuple:
        return (t, tuple(int(c) for c in counts))

    def _q_row(self, key: tuple) -> np.ndarray:
        row = self._q.get(key)
        if row is None:
            row = np.zeros(self.gains.n)
            self._q[key] = row
        return row

    # -- training --------------------------------------------------------

    def train(self, dist: RequestDistribution, slot_duration_s: float = 0.01) -> None:
        """Q-learning over full-batch episodes for ``dist``."""
        if slot_duration_s <= 0:
            raise ValueError("slot duration must be positive")
        self._build_rewards(dist, slot_duration_s)
        cfg = self.config
        alpha = cfg.learning_rate
        epsilon = cfg.epsilon
        n = self.gains.n
        for _ in range(cfg.episodes):
            counts = np.zeros(n, dtype=np.int64)
            for t in range(self.C):
                key = self._state_key(counts, t)
                row = self._q_row(key)
                if self._rng.random() < epsilon:
                    action = int(self._rng.integers(0, n))
                else:
                    action = int(np.argmax(row))
                reward = self._step_reward(t, action, int(counts[action]))
                counts[action] += 1
                if t + 1 < self.C:
                    next_row = self._q_row(self._state_key(counts, t + 1))
                    target = reward + cfg.gamma * float(next_row.max())
                else:
                    target = reward
                row[action] += alpha * (target - row[action])
            alpha *= cfg.learning_rate_decay
            epsilon *= cfg.epsilon_decay
            self.episodes_trained += 1

    # -- policy extraction -------------------------------------------------

    def schedule_batch(self) -> list[ScheduledBlock]:
        """Greedy rollout of the learned policy for one full batch."""
        if self._reward is None:
            raise RuntimeError("call train() before extracting a schedule")
        counts = np.zeros(self.gains.n, dtype=np.int64)
        schedule: list[ScheduledBlock] = []
        for t in range(self.C):
            row = self._q_row(self._state_key(counts, t))
            action = int(np.argmax(row))
            schedule.append(ScheduledBlock(request=action, index=int(counts[action])))
            counts[action] += 1
        return schedule

    @property
    def states_visited(self) -> int:
        """Size of the Q table — the scalability wall §8 warns about."""
        return len(self._q)

"""Scheduling problem definition (§5.1–§5.2).

Shared vocabulary for the greedy and ILP schedulers:

* :class:`ScheduledBlock` — one slot's decision: which block of which
  request goes on the wire.
* :class:`GainTable` — the linearized utility ``g_i(j) = U(j/Nb_i) −
  U((j−1)/Nb_i)`` per request (the paper's step-function
  approximation, exact because block counts are discrete).
* :func:`expected_utility` — the objective of Eq. 2, used to compare
  schedules across schedulers (Fig. 17): for a schedule ``b_1..b_C``,

  .. math::
     V = \\sum_{k=1}^{C} \\gamma^{k-1} \\sum_i U(B_i^k)\\,P(q_i \\mid k)

  where ``B_i^k`` counts blocks of request ``i`` among the first ``k``
  scheduled blocks and ``P(q_i | k)`` is the predicted probability at
  the wall-clock offset of slot ``k``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Protocol, Sequence

import numpy as np

from .distribution import RequestDistribution
from .utility import UtilityFunction

__all__ = [
    "ScheduledBlock",
    "GainTable",
    "Scheduler",
    "expected_utility",
    "expected_utility_scalar",
]


@dataclass(frozen=True, slots=True)
class ScheduledBlock:
    """Decision for one schedule slot: send block ``index`` of ``request``.

    ``slots=True``: schedulers mint one per allocated slot and senders
    queue them by the lookahead window, so the per-instance ``__dict__``
    would be pure overhead on the hot path.
    """

    request: int
    index: int


class Scheduler(Protocol):
    """What the sender needs from a scheduler."""

    C: int
    """Batch length in blocks (the client cache size)."""

    @property
    def position(self) -> int:
        """Slots allocated in the current batch (Listing 1's ``t``).

        With ``C``, this bounds the sender's throttled window pulls so
        a deferral rollback never crosses a batch reset."""
        ...

    def update_distribution(
        self, dist: RequestDistribution, slot_duration_s: float
    ) -> None:
        """Install a fresh prediction; reschedule the unsent remainder."""

    def next_block(self) -> Optional[ScheduledBlock]:
        """Allocate the next block, or None when nothing is worth sending."""

    def schedule_batch(
        self, max_blocks: Optional[int] = None
    ) -> list[ScheduledBlock]:
        """Allocate up to ``max_blocks`` in one call (the sender's
        lookahead fill pulls whole windows through this instead of
        looping :meth:`next_block`)."""

    def rollback(self, blocks: Sequence[ScheduledBlock]) -> None:
        """Un-allocate blocks that were scheduled but never sent."""

    def on_sent(self, block: ScheduledBlock) -> None:
        """Confirm a block reached the wire (cache-mirror bookkeeping)."""


class GainTable:
    """Per-request utility gains with heterogeneous block counts.

    Images of 1.3–2 MB at a 50 KB block size have 26–40 blocks each, so
    ``Nb`` varies per request.  Gains arrays are deduplicated by block
    count (10k images share a few dozen distinct ``Nb`` values).
    """

    def __init__(self, utility: UtilityFunction, num_blocks: Sequence[int]) -> None:
        counts = np.asarray(num_blocks, dtype=np.int64)
        if counts.ndim != 1 or len(counts) == 0:
            raise ValueError("num_blocks must be a non-empty 1-D sequence")
        if (counts < 1).any():
            raise ValueError("every request needs at least one block")
        self.utility = utility
        self.num_blocks = counts
        distinct = np.unique(counts)
        self._by_count: dict[int, np.ndarray] = {
            int(nb): utility.gains(int(nb)) for nb in distinct
        }
        self.mean_first_gain = float(
            np.mean([self._by_count[int(nb)][0] for nb in counts])
        )
        # Dense gather table for gain_vector: one row per *distinct*
        # block count, zero-padded past each row's Nb (a complete
        # request's next-block gain is 0), plus one all-zero column so a
        # clipped ``have`` lands on zero for every row.  Tiny in
        # practice: tens of distinct counts x max Nb.
        width = int(distinct.max()) + 1
        self._gain_matrix = np.zeros((len(distinct), width))
        for row, nb in enumerate(distinct):
            self._gain_matrix[row, : int(nb)] = self._by_count[int(nb)]
        self._row_of_request = np.searchsorted(distinct, counts)

    @property
    def n(self) -> int:
        return len(self.num_blocks)

    def blocks_of(self, request: int) -> int:
        return int(self.num_blocks[request])

    def gains_of(self, request: int) -> np.ndarray:
        """The full gains array ``g(1..Nb)`` for ``request``."""
        return self._by_count[int(self.num_blocks[request])]

    def gain(self, request: int, have_blocks: int) -> float:
        """Marginal gain of the *next* block given ``have_blocks`` cached.

        Zero once the request is complete — a fully cached request has
        nothing left to win, which is what steers the sampler elsewhere.
        """
        gains = self.gains_of(request)
        if have_blocks >= len(gains):
            return 0.0
        return float(gains[have_blocks])

    def gain_vector(self, requests: np.ndarray, have_blocks: np.ndarray) -> np.ndarray:
        """Vectorized :meth:`gain` over parallel arrays.

        A single fancy-indexed gather into the padded per-count gain
        matrix; ``have_blocks`` entries at or beyond a request's ``Nb``
        read the zero padding, matching the scalar path's "complete
        request gains nothing".  ``have_blocks`` must be non-negative.
        """
        requests = np.asarray(requests, dtype=np.int64)
        have = np.asarray(have_blocks, dtype=np.int64)
        if requests.shape != have.shape:
            raise ValueError("requests and have_blocks must be parallel arrays")
        if len(requests) == 0:
            return np.empty(0)
        rows = self._row_of_request[requests]
        cols = np.minimum(have, self._gain_matrix.shape[1] - 1)
        return self._gain_matrix[rows, cols]

    def utility_of(self, request: int, have_blocks: int) -> float:
        """``U(min(have, Nb) / Nb)`` for a request."""
        nb = self.blocks_of(request)
        return float(self.utility(min(have_blocks, nb) / nb))


def expected_utility_scalar(
    schedule: Sequence[ScheduledBlock],
    dist: RequestDistribution,
    gains: GainTable,
    slot_duration_s: float,
    gamma: float = 1.0,
    initial_blocks: Optional[dict[int, int]] = None,
) -> float:
    """Reference (dict-loop) implementation of the Eq. 2 objective.

    Kept as the readable specification; :func:`expected_utility` is the
    vectorized production path and is equivalence-tested against this.
    """
    if slot_duration_s <= 0:
        raise ValueError("slot duration must be positive")
    if not 0 <= gamma <= 1:
        raise ValueError("gamma must lie in [0, 1]")
    have: dict[int, int] = dict(initial_blocks or {})
    value = 0.0
    for k, decision in enumerate(schedule, start=1):
        have[decision.request] = have.get(decision.request, 0) + 1
        delta = k * slot_duration_s
        step = 0.0
        for request, count in have.items():
            p = dist.prob_of(request, delta)
            if p > 0:
                step += gains.utility_of(request, count) * p
        value += gamma ** (k - 1) * step
    return value


def expected_utility(
    schedule: Sequence[ScheduledBlock],
    dist: RequestDistribution,
    gains: GainTable,
    slot_duration_s: float,
    gamma: float = 1.0,
    initial_blocks: Optional[dict[int, int]] = None,
) -> float:
    """Evaluate a schedule under the Eq. 2 objective.

    ``initial_blocks`` seeds per-request cache contents (empty by
    default, matching a fresh batch).  Only requests touched by the
    schedule or the seed contribute — untouched requests have
    ``U(0) = 0``.

    Vectorized over slots × touched requests: the per-slot block counts
    come from one cumulative sum over slot increments, probabilities
    from one :meth:`~RequestDistribution.explicit_matrix` blend, and
    utilities from per-request prefix lookup tables, replacing the
    O(C·n) Python dict loop (Fig. 17's evaluation cost).
    """
    if slot_duration_s <= 0:
        raise ValueError("slot duration must be positive")
    if not 0 <= gamma <= 1:
        raise ValueError("gamma must lie in [0, 1]")
    seeds = dict(initial_blocks or {})
    touched = sorted({b.request for b in schedule} | set(seeds))
    C = len(schedule)
    if C == 0 or not touched:
        return 0.0
    col_of = {r: i for i, r in enumerate(touched)}
    R = len(touched)

    # Per-slot block counts: cumulative sum of one-hot increments.
    inc = np.zeros((C, R))
    for k, decision in enumerate(schedule):
        inc[k, col_of[decision.request]] += 1.0
    counts = np.cumsum(inc, axis=0).astype(np.int64)
    if seeds:
        base = np.zeros(R, dtype=np.int64)
        for request, count in seeds.items():
            base[col_of[request]] = count
        counts += base

    # Utility lookup per touched request: U(min(j, Nb)/Nb) for j up to
    # the request's final count (scalar U calls: O(C + R), not O(C·R)).
    util = np.empty((C, R))
    for i, request in enumerate(touched):
        nb = gains.blocks_of(request)
        top = int(counts[-1, i])
        table = np.array(
            [gains.utility_of(request, j) for j in range(min(top, nb) + 1)]
        )
        util[:, i] = table[np.minimum(counts[:, i], len(table) - 1)]

    # Probabilities at each slot's wall-clock offset, in one blend.
    deltas = np.arange(1, C + 1) * slot_duration_s
    probs_explicit, residual = dist.explicit_matrix(deltas)
    uniform = residual / dist.num_uniform if dist.num_uniform else np.zeros(C)
    probs = np.empty((C, R))
    explicit_col = {int(r): j for j, r in enumerate(dist.explicit_ids)}
    for i, request in enumerate(touched):
        j = explicit_col.get(request)
        probs[:, i] = probs_explicit[:, j] if j is not None else uniform

    # Requests contribute only once they hold >= 1 block (U(0) = 0 by
    # the §3.3 contract, so masking just avoids spurious 0·p work).
    contrib = util * probs
    contrib[counts == 0] = 0.0
    steps = contrib.sum(axis=1)
    discount = gamma ** np.arange(C) if gamma < 1.0 else None
    return float(steps @ discount if discount is not None else steps.sum())

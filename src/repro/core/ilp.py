"""ILP scheduler (§5.2).

The exact (finite-horizon) formulation of the scheduling problem as an
integer linear program.  With ``f_{i,j,k}`` indicating that the j-th
block of request i is sent in slot k, the objective (Eq. 3) is

.. math::
   \\max \\sum_{i}\\sum_{j}\\sum_{k} f_{i,j,k}\\, U^k_{i,j},
   \\qquad
   U^k_{i,j} = \\sum_{t=k}^{C} \\gamma^{t-1} P(q_i \\mid t)\\, g_i(j)

subject to per-slot bandwidth (``Σ_{i,j} f_{i,j,k} ≤ w``) and
send-once (``Σ_k f_{i,j,k} ≤ 1``) constraints.  The ring buffer's
capacity is implicit in the horizon ``C``.

The paper solved this with Gurobi and found it hopeless for real-time
use (Fig. 15: up to tens of minutes on toy instances); we use SciPy's
HiGHS ``milp``.  Problem size is ``n · Nb · C`` binaries — the image
application would need half a billion — so this scheduler exists for
ground truth on micro instances (Figs. 15 & 17), exactly as in the
paper.
"""

from __future__ import annotations

from typing import Optional, Sequence

import numpy as np
from scipy import sparse
from scipy.optimize import Bounds, LinearConstraint, milp

from .distribution import RequestDistribution
from .scheduler import GainTable, ScheduledBlock

__all__ = ["ILPScheduler", "ILPSolution"]


class ILPSolution:
    """A solved schedule plus solver diagnostics."""

    def __init__(
        self,
        schedule: list[ScheduledBlock],
        objective: float,
        status: int,
        message: str,
        num_variables: int,
    ) -> None:
        self.schedule = schedule
        self.objective = objective
        self.status = status
        self.message = message
        self.num_variables = num_variables

    @property
    def optimal(self) -> bool:
        return self.status == 0


class ILPScheduler:
    """Solves Eq. 3 exactly for small instances.

    Parameters mirror the problem definition: ``gains`` fixes ``n`` and
    ``g_i``, ``cache_blocks`` the horizon ``C``, ``bandwidth_blocks``
    the per-slot budget ``w`` (the paper's ``l``; 1 block per slot by
    definition of the slot), ``gamma`` the future discount.
    """

    def __init__(
        self,
        gains: GainTable,
        cache_blocks: int,
        bandwidth_blocks: int = 1,
        gamma: float = 1.0,
    ) -> None:
        if cache_blocks < 1:
            raise ValueError("cache must hold at least one block")
        if bandwidth_blocks < 1:
            raise ValueError("bandwidth must admit at least one block per slot")
        if not 0 <= gamma <= 1:
            raise ValueError("gamma must lie in [0, 1]")
        self.gains = gains
        self.C = cache_blocks
        self.w = bandwidth_blocks
        self.gamma = gamma

    # -- problem construction -----------------------------------------

    def _utility_coefficients(
        self, dist: RequestDistribution, slot_duration_s: float
    ) -> np.ndarray:
        """Dense ``U[k, i, j]`` tensor of expected utility gains.

        ``U^k_{i,j}``: sending block j of request i in slot k earns its
        gain ``g_i(j)`` weighted by the request's probability over every
        remaining slot ``t ≥ k`` (the block stays cached through the
        batch), discounted by ``γ^{t-1}``.
        """
        n = self.gains.n
        C = self.C
        max_nb = int(self.gains.num_blocks.max())
        # prob[t-1, i] = P(q_i | t · slot_duration), t = 1..C
        prob = np.empty((C, n))
        for t in range(1, C + 1):
            prob[t - 1] = self.gains_probabilities(dist, t * slot_duration_s)
        discount = self.gamma ** np.arange(C)
        weighted = prob * discount[:, None]
        # tail[k-1, i] = Σ_{t=k}^{C} γ^{t-1} P(q_i | t)
        tail = np.cumsum(weighted[::-1], axis=0)[::-1]
        U = np.zeros((C, n, max_nb))
        for i in range(n):
            g = self.gains.gains_of(i)
            U[:, i, : len(g)] = tail[:, i : i + 1] * g[None, :]
        return U

    @staticmethod
    def gains_probabilities(dist: RequestDistribution, delta_s: float) -> np.ndarray:
        return dist.dense_at(delta_s)

    def solve(
        self,
        dist: RequestDistribution,
        slot_duration_s: float = 0.01,
        time_limit_s: Optional[float] = None,
    ) -> ILPSolution:
        """Build and solve the ILP; returns the slot-ordered schedule."""
        if slot_duration_s <= 0:
            raise ValueError("slot duration must be positive")
        n, C = self.gains.n, self.C
        max_nb = int(self.gains.num_blocks.max())
        U = self._utility_coefficients(dist, slot_duration_s)

        # Flatten f_{k,i,j} with k outermost: idx = (k*n + i)*max_nb + j.
        num_vars = C * n * max_nb
        c = -U.reshape(num_vars)  # milp minimizes

        # Mask out nonexistent blocks (j >= Nb_i): force them to 0 via bounds.
        upper = np.ones(num_vars)
        for i in range(n):
            nb = self.gains.blocks_of(i)
            if nb < max_nb:
                for k in range(C):
                    base = (k * n + i) * max_nb
                    upper[base + nb : base + max_nb] = 0.0

        constraints = []
        # (1) per-slot bandwidth: Σ_{i,j} f_{k,i,j} ≤ w
        rows, cols = [], []
        for k in range(C):
            start = k * n * max_nb
            for offset in range(n * max_nb):
                rows.append(k)
                cols.append(start + offset)
        A_slot = sparse.csr_matrix(
            (np.ones(len(rows)), (rows, cols)), shape=(C, num_vars)
        )
        constraints.append(LinearConstraint(A_slot, -np.inf, self.w))
        # (2) send-once: Σ_k f_{k,i,j} ≤ 1
        rows, cols = [], []
        for i in range(n):
            for j in range(max_nb):
                row = i * max_nb + j
                for k in range(C):
                    rows.append(row)
                    cols.append((k * n + i) * max_nb + j)
        A_once = sparse.csr_matrix(
            (np.ones(len(rows)), (rows, cols)), shape=(n * max_nb, num_vars)
        )
        constraints.append(LinearConstraint(A_once, -np.inf, 1.0))

        options = {}
        if time_limit_s is not None:
            options["time_limit"] = time_limit_s
        result = milp(
            c,
            constraints=constraints,
            integrality=np.ones(num_vars),
            bounds=Bounds(0.0, upper),
            options=options,
        )

        schedule: list[ScheduledBlock] = []
        if result.x is not None:
            x = np.round(result.x.reshape(C, n, max_nb)).astype(int)
            for k in range(C):
                chosen = np.argwhere(x[k] == 1)
                # Deterministic order within a slot: request, then block.
                for i, j in sorted(map(tuple, chosen)):
                    schedule.append(ScheduledBlock(request=int(i), index=int(j)))
        objective = -float(result.fun) if result.fun is not None else 0.0
        return ILPSolution(
            schedule=schedule,
            objective=objective,
            status=int(result.status),
            message=str(result.message),
            num_variables=num_vars,
        )

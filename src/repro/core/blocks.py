"""Progressive response blocks (§3.3).

Khameleon models every response as an ordered list of fixed-size
blocks: any prefix renders a (possibly lower-quality) result, and the
full list renders the complete result.  A single block is a complete —
if coarse — response.  Requests are integers in ``[0, n)``; applications
map their domain objects (image ids, query signatures) to request ids
via :class:`RequestSpace`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Hashable, Iterator, Optional, Sequence

__all__ = ["Block", "ProgressiveResponse", "RequestSpace"]


@dataclass(frozen=True, slots=True)
class Block:
    """One block of a progressively encoded response.

    ``request`` is the request id, ``index`` the block's position in the
    encoding (0-based: block 0 alone is a renderable coarse response),
    ``size_bytes`` its on-the-wire size (encoders pad short final blocks
    to keep sizes uniform, per §3.3), and ``payload`` opaque application
    data (sampled rows, an image scan, ...).
    """

    request: int
    index: int
    size_bytes: int
    payload: Any = field(default=None, compare=False, hash=False)

    def __post_init__(self) -> None:
        if self.request < 0:
            raise ValueError(f"request id must be non-negative (got {self.request})")
        if self.index < 0:
            raise ValueError(f"block index must be non-negative (got {self.index})")
        if self.size_bytes <= 0:
            raise ValueError(f"block size must be positive (got {self.size_bytes})")


@dataclass(frozen=True, slots=True)
class ProgressiveResponse:
    """A full progressively encoded response: blocks 0..Nb-1 of one request."""

    request: int
    blocks: tuple[Block, ...]

    def __post_init__(self) -> None:
        if not self.blocks:
            raise ValueError("a response needs at least one block")
        for i, block in enumerate(self.blocks):
            if block.request != self.request:
                raise ValueError(
                    f"block {i} belongs to request {block.request}, not {self.request}"
                )
            if block.index != i:
                raise ValueError(f"block at position {i} has index {block.index}")

    @property
    def num_blocks(self) -> int:
        return len(self.blocks)

    @property
    def total_bytes(self) -> int:
        return sum(b.size_bytes for b in self.blocks)

    def prefix(self, k: int) -> tuple[Block, ...]:
        """The first ``k`` blocks (a renderable lower-quality response)."""
        if not 0 <= k <= len(self.blocks):
            raise ValueError(f"prefix length {k} out of range [0, {len(self.blocks)}]")
        return self.blocks[:k]

    def __iter__(self) -> Iterator[Block]:
        return iter(self.blocks)


class RequestSpace:
    """Bidirectional mapping between application keys and request ids.

    The scheduler works over dense integer ids (it holds per-request
    NumPy arrays); applications think in domain keys (thumbnail (row,
    col), query signatures).  A ``RequestSpace`` freezes the universe of
    possible requests — the paper's ``Q = q_1 .. q_n`` — and translates
    both ways in O(1).
    """

    def __init__(self, keys: Sequence[Hashable]) -> None:
        if not keys:
            raise ValueError("request space must not be empty")
        self._keys: tuple[Hashable, ...] = tuple(keys)
        self._ids: dict[Hashable, int] = {}
        for i, key in enumerate(self._keys):
            if key in self._ids:
                raise ValueError(f"duplicate request key: {key!r}")
            self._ids[key] = i

    def __len__(self) -> int:
        return len(self._keys)

    def id_of(self, key: Hashable) -> int:
        """Request id for an application key (KeyError if unknown)."""
        return self._ids[key]

    def key_of(self, request: int) -> Hashable:
        """Application key for a request id (IndexError if out of range)."""
        if not 0 <= request < len(self._keys):
            raise IndexError(f"request id {request} outside [0, {len(self._keys)})")
        return self._keys[request]

    def get_id(self, key: Hashable) -> Optional[int]:
        """Like :meth:`id_of`, but None for unknown keys."""
        return self._ids.get(key)

    def __contains__(self, key: Hashable) -> bool:
        return key in self._ids

    def __iter__(self) -> Iterator[Hashable]:
        return iter(self._keys)

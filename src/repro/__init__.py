"""Khameleon reproduction: continuous prefetch for interactive data applications.

This package reproduces the Khameleon system from *Continuous Prefetch
for Interactive Data Applications* (Mohammed, Wei, Wu, Netravali —
VLDB/SIGMOD 2020, arXiv:2007.07858): a prefetching framework that
jointly optimizes server-side push scheduling and progressive response
encoding to trade response quality for consistently low latency.

Layout (see DESIGN.md for the full inventory):

- :mod:`repro.core` — scheduler (greedy + ILP), ring-buffer cache,
  cache manager, predictor manager, sender, client/server assembly.
- :mod:`repro.sim` — discrete-event network substrate (links, traces,
  bandwidth estimation) replacing the paper's netem/Mahimahi testbed.
- :mod:`repro.predictors` — Kalman, oracle, Markov, point, uniform,
  hover, and ACC-style predictors behind the §4 decomposition API.
- :mod:`repro.encoding` — progressive encoders (image-like, row-sample).
- :mod:`repro.backends` — filesystem / key-value / mini column-store
  database backends with concurrency limits and the §5.4 throttle.
- :mod:`repro.workloads` — trace generators and the two evaluation
  applications (image exploration, Falcon).
- :mod:`repro.baselines` — Baseline, Progressive, and ACC-<acc>-<hor>.
- :mod:`repro.fleet` — multi-tenant serving: N concurrent sessions over
  one backend (cross-session fetch dedup, shared §5.4 throttle budget)
  and one weighted fair-shared downlink.
- :mod:`repro.metrics` / :mod:`repro.experiments` — measurement and the
  per-figure experiment drivers.
"""

__version__ = "1.0.0"

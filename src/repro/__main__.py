"""``python -m repro`` — the figure-regeneration CLI."""

import sys

from repro.cli import main

if __name__ == "__main__":
    sys.exit(main())

"""Command-line interface: regenerate any paper figure.

Usage::

    python -m repro list
    python -m repro fig6                 # default reduced scale
    python -m repro fig9 --scale quick
    python -m repro fig14 --out results.txt
    python -m repro serve --port 0      # live WebSocket frontend

Scales mirror the benchmark harness: ``quick`` / ``default`` /
``paper`` (the last takes hours — it is the authors' full
configuration run in a pure-Python simulator).
"""

from __future__ import annotations

import argparse
import sys
from typing import Callable, Optional

from repro.experiments import figures
from repro.experiments.figures import ImageExperimentScale
from repro.metrics.report import format_table

__all__ = ["main", "FIGURES"]

_SCALES = {
    "quick": ImageExperimentScale(rows=12, cols=12, trace_duration_s=10.0, num_traces=1),
    "default": ImageExperimentScale(rows=16, cols=16, trace_duration_s=15.0, num_traces=1),
    "paper": ImageExperimentScale.paper(),
}

#: Figure name -> (driver, takes_image_scale, description)
FIGURES: dict[str, tuple[Callable, bool, str]] = {
    "fig3": (figures.fig3_utility_curves, False, "utility curves (image SSIM vs linear)"),
    "fig5": (figures.fig5_thinktime_cdf, True, "think-time CDFs of both trace corpora"),
    "fig6": (figures.fig6_bandwidth_cache, True, "metrics vs bandwidth x cache"),
    "fig7": (figures.fig7_latency_vs_utility, True, "latency vs utility scatter"),
    "fig8": (figures.fig8_request_latency, True, "metrics vs request latency"),
    "fig9": (figures.fig9_think_time, True, "metrics vs think time x resources"),
    "fig10": (figures.fig10_convergence, True, "utility convergence after a pause"),
    "fig11": (figures.fig11_ablation, True, "ablation: predictor / progressive arms"),
    "fig12": (figures.fig12_predictors, True, "predictor sensitivity"),
    "fig13": (figures.fig13_cellular, True, "Verizon/AT&T LTE cellular links"),
    "fig14": (figures.fig14_falcon, False, "Falcon port (blocks x predictor x backend)"),
    "fig15": (figures.fig15_ilp_runtime, False, "ILP scheduler runtime"),
    "fig16": (figures.fig16_greedy_runtime, False, "greedy scheduler runtime"),
    "fig17": (figures.fig17_greedy_vs_ilp, False, "greedy vs ILP schedule utility"),
    "fig19": (figures.fig19_overpush, True, "overpush rate"),
    "appb1": (figures.appb1_prediction_frequency, True, "prediction-interval sensitivity"),
}


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Regenerate figures from 'Continuous Prefetch for "
        "Interactive Data Applications' (Khameleon).",
    )
    sub = parser.add_subparsers(dest="command", required=True)
    sub.add_parser("list", help="list available figures")
    fleet = sub.add_parser(
        "fleet",
        help="multi-session fleet serving over a shared backend + downlink",
    )
    fleet.add_argument(
        "--sessions",
        type=int,
        default=8,
        help="sessions to build (static) or plan as arrivals (churn) (default: 8)",
    )
    fleet.add_argument(
        "--scale",
        choices=sorted(_SCALES),
        default="default",
        help="application scale (default: reduced 'default' scale)",
    )
    fleet.add_argument(
        "--predictor",
        default="kalman",
        help="per-session predictor; 'shared-markov' adds the fleet-wide "
        "crowd prior (default: kalman)",
    )
    fleet.add_argument(
        "--backend-concurrency",
        type=int,
        default=None,
        help="shared backend throttle budget (default: unthrottled)",
    )
    fleet.add_argument(
        "--arrivals",
        type=float,
        default=0.0,
        metavar="RATE",
        help="Poisson session arrival rate per second; 0 = everyone at "
        "t=0, the static fleet (default: 0)",
    )
    fleet.add_argument(
        "--dwell",
        type=float,
        default=None,
        metavar="SECONDS",
        help="mean session dwell time (lognormal); default: stay to the end",
    )
    fleet.add_argument(
        "--max-concurrent",
        type=int,
        default=None,
        help="admission cap: arrivals beyond this many live sessions are "
        "rejected (default: admit all)",
    )
    fleet.add_argument(
        "--arrival-seed",
        type=int,
        default=0,
        help="seed for the arrival/dwell draws (default: 0)",
    )
    fleet.add_argument(
        "--patience",
        type=float,
        default=0.0,
        metavar="SECONDS",
        help="how long an arrival beyond --max-concurrent waits in the "
        "admission queue before walking away; 0 = classic reject-at-cap "
        "(default: 0)",
    )
    fleet.add_argument(
        "--queue-depth",
        type=int,
        default=None,
        metavar="N",
        help="admission queue bound; past it the lowest-weight waiter "
        "is shed (default: unbounded)",
    )
    fleet.add_argument(
        "--chaos",
        default=None,
        metavar="SPEC",
        help="fault schedule, e.g. "
        "'worker-crash:1,backend-err:0.05,spike:0.02@1.0,outage:2-3,flaky:7' "
        "(default: well-behaved world)",
    )
    fleet.add_argument(
        "--chaos-seed",
        type=int,
        default=0,
        help="seed for the chaos fault draws (default: 0)",
    )
    fleet.add_argument(
        "--shards",
        type=int,
        default=None,
        metavar="W",
        help="partition the fleet across this many worker processes "
        "(hash-routed sessions, CRDT crowd-prior sync, pooled report); "
        "default: run in-process, unsharded",
    )
    fleet.add_argument(
        "--sync-interval",
        type=float,
        default=0.5,
        metavar="SECONDS",
        help="crowd-prior delta exchange cadence between shards "
        "(shared-markov only; default: 0.5)",
    )
    fleet.add_argument(
        "--transport",
        choices=["pipe", "tcp"],
        default="pipe",
        help="coordinator/worker link for sharded runs: in-process pipes, "
        "or framed loopback TCP with CRC checks, acks, retransmit, and "
        "partition detection (default: pipe)",
    )
    fleet.add_argument(
        "--join-at-round",
        type=int,
        default=None,
        metavar="R",
        help="grow the fleet by one worker at sync round R: the "
        "consistent-hash ring reroutes a slice of sessions and only "
        "those migrate (sharded runs only)",
    )
    fleet.add_argument(
        "--prior-in",
        default=None,
        metavar="NPZ",
        help="warm-start the crowd prior from this file (shared-markov only)",
    )
    fleet.add_argument(
        "--prior-out",
        default=None,
        metavar="NPZ",
        help="save the (pooled) crowd prior here afterwards "
        "(shared-markov only)",
    )
    fleet.add_argument(
        "--checkpoint-every",
        type=int,
        default=0,
        metavar="ROUNDS",
        help="snapshot every shard's recoverable state at this sync-round "
        "cadence so crashed workers resume instead of replaying "
        "(sharded runs only; 0 disables; default: 0)",
    )
    fleet.add_argument(
        "--checkpoint-out",
        default=None,
        metavar="JSON",
        help="persist the final fleet checkpoint bundle here (implies "
        "checkpointing; pairs with --chaos drain:R for a graceful drain)",
    )
    fleet.add_argument(
        "--checkpoint-in",
        default=None,
        metavar="JSON",
        help="resume every shard from this checkpoint bundle (sessions "
        "continue from their saved progress)",
    )
    fleet.add_argument("--out", help="also write the table to this file")
    serve = sub.add_parser(
        "serve",
        help="serve the fleet stack live over WebSockets (wall-clock time)",
    )
    serve.add_argument("--host", default="127.0.0.1", help="bind host")
    serve.add_argument(
        "--port",
        type=int,
        default=8787,
        help="bind port; 0 picks an ephemeral port (printed at startup)",
    )
    serve.add_argument(
        "--scale",
        choices=sorted(_SCALES),
        default="quick",
        help="application grid scale (default: quick)",
    )
    serve.add_argument(
        "--predictor",
        default="kalman",
        help="live predictor: kalman / uniform / point / markov / "
        "shared-markov (default: kalman)",
    )
    serve.add_argument(
        "--sampler",
        default="vectorized",
        help="greedy draw kernel: reference / vectorized / fenwick "
        "(default: vectorized)",
    )
    serve.add_argument(
        "--bandwidth",
        type=float,
        default=None,
        metavar="BYTES_PER_S",
        help="modeled egress bandwidth (default: the paper's 5.625 MB/s)",
    )
    serve.add_argument(
        "--sessions",
        type=int,
        default=8,
        help="expected concurrent population (bandwidth prior divisor)",
    )
    serve.add_argument(
        "--max-concurrent",
        type=int,
        default=None,
        help="admission cap (default: --sessions)",
    )
    serve.add_argument(
        "--backend-concurrency",
        type=int,
        default=None,
        help="shared backend throttle budget (default: unthrottled)",
    )
    serve.add_argument(
        "--prior-in",
        default=None,
        metavar="NPZ",
        help="warm-start the crowd prior from this file (shared-markov only)",
    )
    serve.add_argument(
        "--prior-out",
        default=None,
        metavar="NPZ",
        help="persist the crowd prior here on shutdown (shared-markov only)",
    )
    serve.add_argument(
        "--outbox-depth",
        type=int,
        default=1024,
        metavar="FRAMES",
        help="per-session outbox backpressure bound: frames beyond this "
        "depth are shed and counted, not buffered (default: 1024)",
    )
    serve.add_argument(
        "--ping-interval",
        type=float,
        default=20.0,
        metavar="SECONDS",
        help="probe idle WebSocket connections with a ping this often; "
        "0 disables liveness probing (default: 20)",
    )
    serve.add_argument(
        "--ping-misses",
        type=int,
        default=3,
        metavar="N",
        help="close a connection after this many consecutive unanswered "
        "pings (default: 3)",
    )
    serve.add_argument(
        "--run-for",
        type=float,
        default=None,
        metavar="SECONDS",
        help="serve for this long then exit cleanly (default: forever)",
    )
    serve.add_argument(
        "--resume-grace",
        type=float,
        default=0.0,
        metavar="SECONDS",
        help="park abruptly disconnected sessions this long; a hello "
        "carrying the session's resume token reattaches with pipeline, "
        "weight, and metrics intact (0 disables; default: 0)",
    )
    serve.add_argument(
        "--chaos",
        default=None,
        metavar="SPEC",
        help="server-side fault injection, e.g. 'disconnect:0@1.5' aborts "
        "session 0's socket 1.5 s after admission (default: none)",
    )
    serve.add_argument(
        "--checkpoint-out",
        default=None,
        metavar="JSON",
        help="on drain (SIGTERM / --run-for / Ctrl-C) persist the crowd "
        "prior and resume-token table here",
    )
    serve.add_argument(
        "--checkpoint-in",
        default=None,
        metavar="JSON",
        help="warm the crowd prior from this checkpoint and honor its "
        "resume tokens for --resume-grace seconds after boot",
    )
    for name, (_fn, _scaled, desc) in FIGURES.items():
        p = sub.add_parser(name, help=desc)
        p.add_argument(
            "--scale",
            choices=sorted(_SCALES),
            default="default",
            help="experiment scale (default: reduced 'default' scale)",
        )
        p.add_argument("--out", help="also write the table to this file")
    return parser


def _run_fleet_command(args) -> list[tuple[list[dict], str]]:
    """Run a (static or churning) fleet; returns (rows, title) tables."""
    from repro.experiments.configs import DEFAULT_ENV, FleetEnvironment
    from repro.experiments.runner import run_fleet, run_fleet_sharded
    from repro.fleet import ArrivalConfig
    from repro.workloads.image_app import ImageExplorationApp
    from repro.workloads.mouse import MouseTraceGenerator

    scale = _SCALES[args.scale]
    app = ImageExplorationApp(rows=scale.rows, cols=scale.cols)
    traces = [
        MouseTraceGenerator(app.layout, seed=100 + i).generate(
            duration_s=scale.trace_duration_s
        )
        for i in range(args.sessions)
    ]
    arrival = None
    if args.arrivals > 0 or args.dwell is not None or args.max_concurrent is not None:
        if args.patience > 0 and args.max_concurrent is None:
            raise SystemExit("--patience needs --max-concurrent")
        arrival = ArrivalConfig(
            rate_per_s=args.arrivals,
            mean_dwell_s=args.dwell,
            max_concurrent=args.max_concurrent,
            seed=args.arrival_seed,
            patience_s=args.patience,
            queue_depth=args.queue_depth,
        )
    elif args.patience > 0 or args.queue_depth is not None:
        raise SystemExit("--patience/--queue-depth need --max-concurrent")
    chaos = None
    if args.chaos:
        from repro.chaos import ChaosConfig

        chaos = ChaosConfig.parse(args.chaos, seed=args.chaos_seed)
        if chaos.has_worker_faults and args.shards is None:
            raise SystemExit("--chaos worker-crash needs --shards")
        if chaos.has_drain and args.shards is None:
            raise SystemExit("--chaos drain needs --shards")
    checkpoint = None
    if args.checkpoint_every or args.checkpoint_out or args.checkpoint_in:
        from repro.fleet import CheckpointConfig

        if args.shards is None:
            raise SystemExit("--checkpoint-* flags need --shards")
        if args.checkpoint_every < 0:
            raise SystemExit("--checkpoint-every must be >= 0")
        cadence = args.checkpoint_every
        if cadence == 0 and (args.checkpoint_out or args.checkpoint_in):
            cadence = 1  # persisting or resuming implies capturing
        checkpoint = CheckpointConfig(
            cadence_rounds=cadence,
            out_path=args.checkpoint_out,
            in_path=args.checkpoint_in,
        )
    fleet_env = FleetEnvironment(
        num_sessions=args.sessions,
        env=DEFAULT_ENV,
        backend_concurrency=args.backend_concurrency,
        arrival=arrival,
        chaos=chaos,
        checkpoint=checkpoint,
    )
    if (args.prior_in or args.prior_out) and args.predictor != "shared-markov":
        raise SystemExit("--prior-in/--prior-out need --predictor shared-markov")
    if args.shards is None and args.transport != "pipe":
        raise SystemExit("--transport needs --shards")
    if args.shards is None and args.join_at_round is not None:
        raise SystemExit("--join-at-round needs --shards")
    if args.shards is not None:
        if args.shards < 1:
            raise SystemExit("--shards must be >= 1")
        result = run_fleet_sharded(
            app,
            traces,
            fleet_env,
            num_shards=args.shards,
            predictor=args.predictor,
            sync_interval_s=args.sync_interval,
            shared_prior=args.prior_in,
            prior_out=args.prior_out,
            transport=args.transport,
            join_at_round=args.join_at_round,
        )
    else:
        prior = None
        if args.prior_in or args.prior_out:
            from repro.predictors.shared import SharedTransitionPrior

            # run_fleet observes into the prior it is handed, so saving
            # afterwards captures this run's contribution too — the
            # same contract as the sharded runner's pooled prior.
            prior = (
                SharedTransitionPrior.load(args.prior_in, n=app.num_requests)
                if args.prior_in
                else SharedTransitionPrior(app.num_requests)
            )
        result = run_fleet(
            app, traces, fleet_env,
            predictor=args.predictor, shared_prior=prior,
        )
        if args.prior_out:
            prior.save(args.prior_out)
    d = result.diagnostics
    title = (
        f"fleet: {args.sessions} sessions | link fairness "
        f"{d['link_fairness']:.3f} | shared backend hits "
        f"{100 * d['shared_hit_rate']:.1f}%"
    )
    churn = d.get("churn")
    if churn is not None:
        title += (
            f" | admitted {churn['admitted']}/{churn['arrivals']}"
            f" (rejected {churn['rejected']}, departed {churn['departed']})"
            f" | early hit {100 * d['early_hit_rate']:.1f}%"
        )
        if churn["queued"]:
            title += (
                f" | queued {churn['queued']} "
                f"(admitted {churn['admitted_from_queue']}, "
                f"shed {churn['shed_patience']} patience"
                f" + {churn['shed_capacity']} capacity)"
            )
    sharding = d.get("sharding")
    if sharding is not None:
        title += (
            f" | shards {sharding['shards']}"
            f" ({sharding['sync_rounds']} sync rounds, "
            f"{sharding['transitions_merged']} transitions merged, "
            f"max shard CPU {max(sharding['cpu_run_s']):.2f}s)"
        )
        if chaos is not None or sharding["restarts"]:
            title += (
                f" | shards_recovered={sharding['shards_recovered']}"
                f" shards_lost={sharding['shards_lost']}"
                f" sessions_lost={sharding['sessions_lost']}"
            )
        if "sessions_resumed" in sharding:
            title += (
                f" | sessions_resumed={sharding['sessions_resumed']}"
                f" checkpoints={sharding['checkpoints_taken']}"
            )
            if sharding.get("drained_at_round") is not None:
                title += f" drained@r{sharding['drained_at_round']}"
        if sharding.get("sessions_migrated"):
            title += (
                f" | sessions_migrated={sharding['sessions_migrated']}"
                f" members={sharding['members']}"
            )
        transport_d = sharding.get("transport")
        if transport_d is not None and transport_d["driver"] != "pipe":
            totals = transport_d["totals"]
            title += (
                f" | transport={transport_d['driver']}"
                f" retransmits={totals['retransmits']}"
                f" crc_rejects={totals['crc_rejects']}"
                f" partitions_detected={totals['partitions_detected']}"
            )
    chaos_d = d.get("chaos")
    if chaos_d is not None:
        title += (
            f" | chaos: {chaos_d['errors_injected']} errors, "
            f"{chaos_d['spikes_injected']} spikes, "
            f"{chaos_d['retries_scheduled']} retries, "
            f"{chaos_d['fetches_abandoned']} abandoned"
        )
    tables = [(result.rows(), title)]
    if result.cohorts:
        tables.append((result.cohort_rows(), "arrival cohorts (5 s buckets)"))
    return tables


def _run_serve_command(args) -> int:
    """Boot the wall-clock serving frontend (blocks until shutdown)."""
    import asyncio

    from repro.experiments.configs import DEFAULT_ENV, FleetEnvironment
    from repro.fleet import ArrivalConfig
    from repro.predictors.shared import SharedTransitionPrior
    from repro.serve import create_app

    scale = _SCALES[args.scale]
    env = DEFAULT_ENV
    if args.bandwidth is not None:
        env = env.with_bandwidth(args.bandwidth)
    arrival = (
        ArrivalConfig(max_concurrent=args.max_concurrent)
        if args.max_concurrent is not None
        else None
    )
    fleet_env = FleetEnvironment(
        num_sessions=args.sessions,
        env=env,
        backend_concurrency=args.backend_concurrency,
        arrival=arrival,
    )
    if (args.prior_in or args.prior_out) and args.predictor != "shared-markov":
        raise SystemExit("--prior-in/--prior-out need --predictor shared-markov")
    prior = None
    if args.prior_in:
        prior = SharedTransitionPrior.load(args.prior_in, n=scale.rows * scale.cols)
        print(f"prior: loaded {prior.transitions_observed} transitions "
              f"from {args.prior_in}", flush=True)
    chaos = None
    if args.chaos:
        from repro.chaos import ChaosConfig

        chaos = ChaosConfig.parse(args.chaos)
    app = create_app(
        fleet_env,
        rows=scale.rows,
        cols=scale.cols,
        predictor=args.predictor,
        sampler=args.sampler,
        host=args.host,
        port=args.port,
        prior=prior,
        outbox_depth=args.outbox_depth,
        ping_interval_s=args.ping_interval,
        ping_max_misses=args.ping_misses,
        resume_grace_s=args.resume_grace,
        chaos=chaos,
        checkpoint_out=args.checkpoint_out,
        checkpoint_in=args.checkpoint_in,
    )

    async def _serve() -> None:
        import signal

        await app.start()
        # Machine-parseable: the smoke client greps this line for the
        # bound port (required when --port 0 picks an ephemeral one).
        print(f"serving on ws://{app.host}:{app.port}/ "
              f"({app.app.num_requests} requests, predictor={args.predictor}, "
              f"cap={app.max_concurrent})", flush=True)
        # SIGTERM = graceful drain: stop admitting, close every live
        # socket with 1001 "going away", checkpoint, exit 0.
        drain = asyncio.Event()
        loop = asyncio.get_running_loop()
        try:
            loop.add_signal_handler(signal.SIGTERM, drain.set)
            loop.add_signal_handler(signal.SIGINT, drain.set)
        except (NotImplementedError, RuntimeError):  # pragma: no cover
            pass  # non-Unix event loop: Ctrl-C still raises KeyboardInterrupt

        async def _until_drained(awaitable) -> None:
            drained = asyncio.ensure_future(drain.wait())
            work = asyncio.ensure_future(awaitable)
            try:
                await asyncio.wait(
                    {drained, work}, return_when=asyncio.FIRST_COMPLETED
                )
            finally:
                drained.cancel()
                work.cancel()

        try:
            if args.run_for is not None:
                await _until_drained(asyncio.sleep(args.run_for))
            else:
                await _until_drained(app.serve_forever())
        except (KeyboardInterrupt, asyncio.CancelledError):
            pass
        finally:
            if drain.is_set():
                print("drain: SIGTERM received, retiring sessions", flush=True)
            await app.stop()

    try:
        asyncio.run(_serve())
    except KeyboardInterrupt:
        pass
    s = app.stats
    print(
        f"served: {s.sessions_admitted} admitted, {s.sessions_rejected} "
        f"rejected, {s.sessions_detached} detached, {s.blocks_pushed} "
        f"blocks ({s.bytes_pushed} B) pushed, {s.frames_dropped} frames "
        f"dropped, {s.pings_sent} pings sent, {s.idle_closed} idle-closed",
        flush=True,
    )
    if s.sessions_parked or s.sessions_resumed or s.resume_rejected:
        print(
            f"resume: {s.sessions_parked} parked, {s.sessions_resumed} "
            f"resumed, {s.resume_rejected} rejected",
            flush=True,
        )
    if args.checkpoint_out:
        print(f"checkpoint: saved to {args.checkpoint_out}", flush=True)
    if args.prior_out:
        app.prior.save(args.prior_out)
        print(
            f"prior: saved {app.prior.transitions_observed} transitions "
            f"to {args.prior_out}",
            flush=True,
        )
    return 0


def main(argv: Optional[list[str]] = None) -> int:
    args = _build_parser().parse_args(argv)
    if args.command == "list":
        width = max(len(n) for n in FIGURES)
        for name, (_fn, _scaled, desc) in FIGURES.items():
            print(f"{name:<{width}}  {desc}")
        return 0

    if args.command == "serve":
        return _run_serve_command(args)

    if args.command == "fleet":
        table = "\n\n".join(
            format_table(rows, title=title)
            for rows, title in _run_fleet_command(args)
        )
    else:
        driver, takes_scale, desc = FIGURES[args.command]
        rows = driver(scale=_SCALES[args.scale]) if takes_scale else driver()
        title = f"{args.command}: {desc}"
        table = format_table(rows, title=title)
    print(table)
    if args.out:
        with open(args.out, "w") as f:
            f.write(table + "\n")
    return 0


if __name__ == "__main__":  # pragma: no cover - exercised via __main__
    sys.exit(main())

"""Idealized ACC-<acc>-<hor> prefetching baselines (§6.1).

The paper's strongest comparison points: "we use a perfect predictor
that knows the next ``hor`` requests with ``acc`` accuracy per
request.  After each user-initiated request, the prefetcher issues up
to ``hor`` prefetching requests; to avoid triggering network
congestion, it does not prefetch if the number of outstanding requests
will exceed a bandwidth-determined threshold."

``ACC-1-1`` and ``ACC-1-5`` therefore *cannot be beaten on prediction*
— they read the actual future from the trace.  What they lack is
Khameleon's decoupling of burstiness from network use: their prefetch
traffic lands exactly when the user is already congesting the link.

The accuracy knob degrades each individual prediction independently:
with probability ``1 - acc`` the predicted request is replaced by a
uniformly random *wrong* request (deterministic per seed).
"""

from __future__ import annotations

from typing import Optional, Sequence

import numpy as np

from .classic import ClassicSession

__all__ = ["ACCPrefetcher", "acc_threshold"]


def acc_threshold(
    bandwidth_bytes_per_s: float,
    mean_response_bytes: float,
    window_s: float = 3.0,
    minimum: int = 1,
) -> int:
    """Bandwidth-determined outstanding-request threshold (§6.1).

    Caps in-flight responses to roughly what the link can deliver in
    ``window_s`` seconds — beyond that, additional prefetches only sit
    in the queue and delay user-initiated responses.  The default
    window lets ACC prefetch aggressively on fat links while still
    strangling it on thin ones, which is the §6.2 behaviour (ACC gains
    with bandwidth but congests itself at 1.5 MB/s).
    """
    if bandwidth_bytes_per_s <= 0:
        raise ValueError("bandwidth must be positive")
    if mean_response_bytes <= 0:
        raise ValueError("mean response size must be positive")
    return max(minimum, int(bandwidth_bytes_per_s * window_s / mean_response_bytes))


class ACCPrefetcher:
    """Trace-reading prefetcher attached to a :class:`ClassicSession`.

    Parameters
    ----------
    session:
        The request-response session to prefetch into.
    future_requests:
        The trace's full request-id sequence, in order.  The prefetcher
        is *given the future* — this is what makes ACC an upper bound.
    accuracy:
        Per-prediction probability of being correct (``acc``).
    horizon:
        Number of upcoming requests predicted after each user request
        (``hor``).
    outstanding_limit:
        §6.1's bandwidth-determined threshold (see :func:`acc_threshold`).
    num_requests:
        Universe size, for drawing wrong predictions.
    """

    def __init__(
        self,
        session: ClassicSession,
        future_requests: Sequence[int],
        accuracy: float,
        horizon: int,
        outstanding_limit: int,
        num_requests: int,
        seed: int = 0,
    ) -> None:
        if not 0 <= accuracy <= 1:
            raise ValueError("accuracy must lie in [0, 1]")
        if horizon < 1:
            raise ValueError("horizon must be >= 1")
        if outstanding_limit < 1:
            raise ValueError("outstanding limit must be >= 1")
        if num_requests < 1:
            raise ValueError("num_requests must be >= 1")
        self.session = session
        self.future_requests = list(future_requests)
        self.accuracy = accuracy
        self.horizon = horizon
        self.outstanding_limit = outstanding_limit
        self.num_requests = num_requests
        self._rng = np.random.default_rng(seed)
        self.predictions_made = 0
        self.predictions_correct = 0
        self.prefetches_issued = 0
        self.prefetches_suppressed = 0

    def on_user_request(self, position: int) -> None:
        """React to the user's ``position``-th request (0-based).

        Issues up to ``horizon`` prefetches for positions ``position+1
        .. position+horizon``, each individually degraded to
        ``accuracy``, subject to the outstanding threshold.
        """
        if not 0 <= position < len(self.future_requests):
            raise IndexError(f"position {position} outside the trace")
        for k in range(1, self.horizon + 1):
            idx = position + k
            if idx >= len(self.future_requests):
                break
            prediction = self._predict(self.future_requests[idx])
            if self.session.outstanding >= self.outstanding_limit:
                self.prefetches_suppressed += 1
                continue
            if self.session.prefetch(prediction):
                self.prefetches_issued += 1

    def _predict(self, truth: int) -> int:
        self.predictions_made += 1
        if self._rng.random() < self.accuracy:
            self.predictions_correct += 1
            return truth
        if self.num_requests == 1:
            return truth  # no wrong answer exists
        wrong = int(self._rng.integers(0, self.num_requests - 1))
        if wrong >= truth:
            wrong += 1
        return wrong

    @property
    def empirical_accuracy(self) -> Optional[float]:
        if self.predictions_made == 0:
            return None
        return self.predictions_correct / self.predictions_made

"""Traditional request-response architecture (§3.1, §6.1 baselines).

The pull-based workflow of Figure 2(a): user requests go out over the
uplink, the server fetches the full response from the backend, and the
response contends for the shared downlink with every other in-flight
response.  This module implements that loop over the same simulated
network substrate Khameleon runs on, plus the two §6.1 variants built
from it:

* **Baseline** (``variant="full"``): fetches complete responses.
  Utility is always 1 — at the price of serialization delay and
  congestion when responses queue behind each other.
* **Progressive** (``variant="first_block"``): fetches only block 0 of
  each response.  Utility drops to ``U(1/Nb)`` but transfers shrink by
  ``Nb``× (the Fig. 11 "cache amplification" arm).

Prefetching baselines attach an :class:`~repro.baselines.acc.ACCPrefetcher`
to the session; prefetched responses fill the same LRU cache.

Preemptive-interaction semantics match the Khameleon client: an upcall
for logical timestamp ``T`` drops all pending requests older than ``T``
(§2), and metrics count those as preempted.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Callable, Optional

if TYPE_CHECKING:
    from repro.backends.base import Backend

from repro.core.blocks import ProgressiveResponse
from repro.core.cache import LRUCache
from repro.core.cache_manager import RequestOutcome, Upcall
from repro.core.utility import UtilityFunction
from repro.sim.engine import Simulator
from repro.sim.link import ControlChannel, Link

__all__ = ["ClassicConfig", "ClassicSession", "CachedResponse"]


@dataclass(frozen=True)
class CachedResponse:
    """What the LRU cache stores: a block prefix of a response."""

    request: int
    blocks: int
    total_blocks: int
    size_bytes: int

    @property
    def fraction(self) -> float:
        return self.blocks / self.total_blocks


@dataclass
class ClassicConfig:
    """Knobs for the request-response systems (§6.1 defaults)."""

    cache_bytes: int = 50_000_000
    variant: str = "full"  # "full" | "first_block"

    def __post_init__(self) -> None:
        if self.cache_bytes <= 0:
            raise ValueError("cache must be positive")
        if self.variant not in ("full", "first_block"):
            raise ValueError(f"unknown variant {self.variant!r}")


class ClassicSession:
    """A wired request-response client/server pair.

    The session exposes the same observable surface as
    :class:`~repro.core.session.KhameleonSession` — ``request()``,
    ``outcomes``, upcalls — so the experiment runner and metrics
    collector treat both uniformly.
    """

    def __init__(
        self,
        sim: Simulator,
        backend: "Backend",
        utility: UtilityFunction,
        num_blocks_of: Callable[[int], int],
        downlink: Link,
        uplink: ControlChannel,
        config: Optional[ClassicConfig] = None,
        on_upcall: Optional[Callable[[Upcall], None]] = None,
    ) -> None:
        self.sim = sim
        self.backend = backend
        self.utility = utility
        self.num_blocks_of = num_blocks_of
        self.downlink = downlink
        self.uplink = uplink
        self.config = config or ClassicConfig()
        self.on_upcall = on_upcall

        self.cache = LRUCache(self.config.cache_bytes)
        self._next_ts = 0
        self._pending: dict[int, RequestOutcome] = {}  # logical ts -> outcome
        self._outstanding: set[int] = set()  # request ids awaiting a response
        self.outcomes: list[RequestOutcome] = []

        self.requests_sent = 0
        self.prefetches_sent = 0
        self.responses_received = 0
        self.bytes_received = 0
        self._prefetched_unused: set[int] = set()

    # -- application side ----------------------------------------------

    def request(self, request: int) -> RequestOutcome:
        """Register a user request; hit the LRU cache or go to the server."""
        ts = self._next_ts
        self._next_ts += 1
        outcome = RequestOutcome(
            request=request, logical_ts=ts, registered_at=self.sim.now
        )
        self.outcomes.append(outcome)
        self._prefetched_unused.discard(request)
        cached = self.cache.get(request)
        if cached is not None:
            outcome.cache_hit = True
            self._serve(outcome, cached)
        else:
            self._pending[ts] = outcome
            self._send_request(request, prefetch=False)
        return outcome

    def prefetch(self, request: int) -> bool:
        """Issue a speculative fetch; False if cached or already in flight."""
        if self.cache.peek(request) is not None or request in self._outstanding:
            return False
        self._prefetched_unused.add(request)
        self._send_request(request, prefetch=True)
        return True

    @property
    def outstanding(self) -> int:
        """Requests on the wire without a response yet (§6.1 threshold)."""
        return len(self._outstanding)

    # -- request/response loop -------------------------------------------

    def _send_request(self, request: int, prefetch: bool) -> None:
        if request in self._outstanding:
            return  # piggyback on the in-flight fetch
        self._outstanding.add(request)
        if prefetch:
            self.prefetches_sent += 1
        else:
            self.requests_sent += 1
        self.uplink.send(self._server_on_request, request)

    def _server_on_request(self, request: int) -> None:
        """Server endpoint: backend fetch, then stream the response."""
        self.backend.fetch(request, lambda resp: self._server_send(request, resp))

    def _server_send(self, request: int, response: ProgressiveResponse) -> None:
        if self.config.variant == "first_block":
            blocks = 1
        else:
            blocks = response.num_blocks
        nbytes = sum(b.size_bytes for b in response.blocks[:blocks])
        entry = CachedResponse(
            request=request,
            blocks=blocks,
            total_blocks=response.num_blocks,
            size_bytes=nbytes,
        )
        self.downlink.send(nbytes, self._client_on_response, entry)

    def _client_on_response(self, entry: CachedResponse) -> None:
        self.responses_received += 1
        self.bytes_received += entry.size_bytes
        self._outstanding.discard(entry.request)
        self.cache.put(entry.request, entry, entry.size_bytes)
        # Serve the newest pending request for this id (serving preempts
        # the older ones regardless).
        match = None
        for ts in sorted(self._pending, reverse=True):
            if self._pending[ts].request == entry.request:
                match = self._pending[ts]
                break
        if match is not None:
            self._serve(match, entry)

    # -- internals --------------------------------------------------------

    def _serve(self, outcome: RequestOutcome, entry: CachedResponse) -> None:
        now = self.sim.now
        nb = self.num_blocks_of(outcome.request)
        outcome.served_at = now
        outcome.blocks_at_upcall = entry.blocks
        outcome.utility_at_upcall = float(self.utility(min(entry.blocks, nb) / nb))
        self._pending.pop(outcome.logical_ts, None)
        for ts in [t for t in self._pending if t < outcome.logical_ts]:
            self._pending.pop(ts).preempted = True
        if self.on_upcall is not None:
            self.on_upcall(
                Upcall(
                    request=outcome.request,
                    logical_ts=outcome.logical_ts,
                    time_s=now,
                    blocks_available=entry.blocks,
                    utility=outcome.utility_at_upcall,
                )
            )

    # -- metrics hooks ------------------------------------------------------

    @property
    def pending_count(self) -> int:
        return len(self._pending)

    @property
    def unused_prefetches(self) -> int:
        """Prefetched responses never consumed by a user request."""
        return len(self._prefetched_unused)

    def finalize(self) -> None:
        """Drop still-pending requests at end of run (never served)."""
        self._pending.clear()

"""Comparison systems from §6.1.

* ``Baseline`` — a standard request-response application with no
  prefetching: requests travel the uplink, the server fetches the full
  response from the backend, and the response streams back over the
  shared downlink.  LRU client cache.
* ``Progressive`` — same request-response loop, but only the first
  block of each response is retrieved (progressive encoding without
  prefetching; the Fig. 11 ablation arm).
* ``ACC-<acc>-<hor>`` — idealized prefetching upper bounds: after each
  user request, up to ``hor`` prefetch requests are issued, each
  matching the *actual* next request in the trace with probability
  ``acc`` (a perfect predictor degraded to a chosen accuracy).  A
  bandwidth-determined outstanding-request threshold prevents the
  prefetcher from flooding the link, exactly as described in §6.1.

All of these share the Khameleon experiment substrate — simulator,
links, backends, traces — so comparisons isolate the architecture, not
the harness.
"""

from .classic import ClassicConfig, ClassicSession
from .acc import ACCPrefetcher, acc_threshold

__all__ = ["ClassicConfig", "ClassicSession", "ACCPrefetcher", "acc_threshold"]

"""Per-figure experiment sweeps (§6, Appendix A/B).

One function per data-bearing figure; each returns the rows the figure
plots (list of dicts), and the benchmark harness prints them with
:func:`repro.metrics.report.format_table`.

Scale: the paper's full configuration (10k thumbnails, 3-minute traces,
14 users) takes hours in a pure-Python simulator, so every driver takes
an :class:`ImageExperimentScale` whose defaults are a reduced — but
structurally identical — configuration.  EXPERIMENTS.md records results
at the scales used.
"""

from __future__ import annotations

import statistics
import time
from dataclasses import dataclass, replace
from typing import Callable, Optional, Sequence

import numpy as np

from repro.core.distribution import RequestDistribution
from repro.core.greedy import GreedyScheduler
from repro.core.ilp import ILPScheduler
from repro.core.scheduler import GainTable, expected_utility
from repro.core.utility import LinearUtility, ssim_image_utility
from repro.workloads.falcon import FalconApp, FalconTraceGenerator
from repro.workloads.image_app import ImageExplorationApp
from repro.workloads.mouse import MouseTraceGenerator
from repro.workloads.thinktime import mean_think_time_s, rescale_think_times
from repro.workloads.trace import InteractionTrace

from .configs import (
    DEFAULT_ENV,
    HIGH_RESOURCE,
    LOW_RESOURCE,
    MED_RESOURCE,
    EnvironmentConfig,
)
from .runner import RunResult, run_convergence, run_falcon, run_image_system

__all__ = [
    "ImageExperimentScale",
    "RESOURCE_SETTINGS",
    "fig3_utility_curves",
    "fig5_thinktime_cdf",
    "fig6_bandwidth_cache",
    "fig7_latency_vs_utility",
    "fig8_request_latency",
    "fig9_think_time",
    "fig10_convergence",
    "fig11_ablation",
    "fig12_predictors",
    "fig13_cellular",
    "fig14_falcon",
    "fig15_ilp_runtime",
    "fig16_greedy_runtime",
    "fig17_greedy_vs_ilp",
    "fig19_overpush",
    "appb1_prediction_frequency",
]

#: §6.2's three composite settings, keyed as the figures label them.
RESOURCE_SETTINGS: dict[str, EnvironmentConfig] = {
    "low": LOW_RESOURCE,
    "med": MED_RESOURCE,
    "high": HIGH_RESOURCE,
}

#: Paper's Fig. 6 sweep values.
PAPER_BANDWIDTHS = (1_500_000.0, 5_625_000.0, 15_000_000.0)
PAPER_CACHES = (10_000_000, 50_000_000, 100_000_000)
PAPER_REQUEST_LATENCIES = (0.020, 0.050, 0.100, 0.400)
PAPER_THINK_TIMES = (0.010, 0.050, 0.100, 0.200)


@dataclass(frozen=True)
class ImageExperimentScale:
    """Reduced-scale knobs for the image-application sweeps.

    ``rows × cols`` thumbnails instead of 100 × 100, shorter traces,
    fewer simulated users.  Set ``paper()`` for the full configuration.
    """

    rows: int = 20
    cols: int = 20
    trace_duration_s: float = 20.0
    num_traces: int = 2
    seed: int = 0

    @classmethod
    def paper(cls) -> "ImageExperimentScale":
        return cls(rows=100, cols=100, trace_duration_s=180.0, num_traces=14)

    def build(self) -> tuple[ImageExplorationApp, list[InteractionTrace]]:
        app = ImageExplorationApp(rows=self.rows, cols=self.cols)
        gen = MouseTraceGenerator(app.layout, seed=self.seed)
        traces = gen.generate_corpus(self.num_traces, self.trace_duration_s)
        return app, traces


def _mean_rows(results: Sequence[RunResult], **sweep_columns) -> dict:
    """Average one (system, condition) cell across traces."""
    if not results:
        raise ValueError("no results to aggregate")
    rows = [r.row() for r in results]
    out = {"system": rows[0]["system"], **sweep_columns}
    numeric = [k for k, v in rows[0].items() if isinstance(v, (int, float))]
    for key in numeric:
        out[key] = statistics.fmean(row[key] for row in rows if key in row)
    return out


def fig3_utility_curves(samples: int = 21) -> list[dict]:
    """Fig. 3: the SSIM image curve vs the linear visualization curve."""
    image = ssim_image_utility()
    linear = LinearUtility()
    rows = []
    for i in range(samples):
        frac = i / (samples - 1)
        rows.append(
            {
                "%blocks": 100.0 * frac,
                "image_utility": float(image(frac)),
                "vis_utility": float(linear(frac)),
            }
        )
    return rows


def fig5_thinktime_cdf(
    scale: Optional[ImageExperimentScale] = None,
    falcon_traces: int = 3,
    falcon_duration_s: float = 180.0,
    percentiles: Sequence[float] = (10, 25, 50, 75, 90, 99),
) -> list[dict]:
    """Fig. 5: think-time distributions for both applications."""
    scale = scale or ImageExperimentScale()
    _app, traces = scale.build()
    image_thinks = np.concatenate([t.think_times_s() for t in traces])

    falcon_app = FalconApp()
    fgen = FalconTraceGenerator(falcon_app, seed=scale.seed)
    falcon = [fgen.generate(falcon_duration_s, trace_id=i) for i in range(falcon_traces)]
    falcon_thinks = np.concatenate([t.interaction.think_times_s() for t in falcon])

    rows = []
    for app_name, thinks in (("image", image_thinks), ("falcon", falcon_thinks)):
        for p in percentiles:
            rows.append(
                {
                    "app": app_name,
                    "percentile": p,
                    "think_time_ms": float(np.percentile(thinks, p)) * 1e3,
                }
            )
    return rows


FIG6_SYSTEMS = ("khameleon", "acc-1-1", "acc-1-5", "acc-0.8-5", "baseline")


def fig6_bandwidth_cache(
    scale: Optional[ImageExperimentScale] = None,
    bandwidths: Sequence[float] = PAPER_BANDWIDTHS,
    caches: Sequence[int] = PAPER_CACHES,
    systems: Sequence[str] = FIG6_SYSTEMS,
) -> list[dict]:
    """Fig. 6: four metrics over bandwidth × cache × system."""
    scale = scale or ImageExperimentScale()
    app, traces = scale.build()
    rows = []
    for cache in caches:
        for bw in bandwidths:
            env = DEFAULT_ENV.with_bandwidth(bw).with_cache(cache)
            for system in systems:
                results = [
                    run_image_system(system, app, trace, env, seed=scale.seed)
                    for trace in traces
                ]
                rows.append(
                    _mean_rows(
                        results,
                        cache_mb=cache / 1e6,
                        bandwidth_mbps=bw / 1e6,
                    )
                )
    return rows


def fig7_latency_vs_utility(
    scale: Optional[ImageExperimentScale] = None,
    bandwidths: Sequence[float] = PAPER_BANDWIDTHS,
    caches: Sequence[int] = PAPER_CACHES,
    systems: Sequence[str] = ("khameleon", "acc-1-5", "baseline"),
) -> list[dict]:
    """Fig. 7: the latency/utility scatter (same sweep, fewer systems)."""
    rows = fig6_bandwidth_cache(scale, bandwidths, caches, systems)
    return [
        {
            "system": r["system"],
            "cache_mb": r["cache_mb"],
            "bandwidth_mbps": r["bandwidth_mbps"],
            "latency_ms": r["latency_ms"],
            "utility": r["utility"],
        }
        for r in rows
    ]


def fig8_request_latency(
    scale: Optional[ImageExperimentScale] = None,
    latencies_s: Sequence[float] = PAPER_REQUEST_LATENCIES,
    systems: Sequence[str] = ("khameleon", "acc-1-1", "acc-1-5", "baseline"),
    bandwidth: float = 15_000_000.0,
    cache: int = 50_000_000,
) -> list[dict]:
    """Fig. 8: metrics vs request latency at 15 MB/s, 50 MB cache."""
    scale = scale or ImageExperimentScale()
    app, traces = scale.build()
    rows = []
    for latency in latencies_s:
        env = (
            DEFAULT_ENV.with_bandwidth(bandwidth)
            .with_cache(cache)
            .with_request_latency(latency)
        )
        for system in systems:
            results = [
                run_image_system(system, app, trace, env, seed=scale.seed)
                for trace in traces
            ]
            rows.append(_mean_rows(results, request_latency_ms=latency * 1e3))
    return rows


def fig9_think_time(
    scale: Optional[ImageExperimentScale] = None,
    think_times_s: Sequence[float] = PAPER_THINK_TIMES,
    resources: Sequence[str] = ("low", "med", "high"),
    systems: Sequence[str] = (
        "khameleon",
        "khameleon-oracle",
        "acc-1-1",
        "acc-1-5",
        "baseline",
    ),
) -> list[dict]:
    """Fig. 9: metrics vs synthetic think time × resource setting."""
    scale = scale or ImageExperimentScale()
    app, traces = scale.build()
    rows = []
    for resource in resources:
        env = RESOURCE_SETTINGS[resource]
        for think in think_times_s:
            warped = [rescale_think_times(t, think) for t in traces]
            for system in systems:
                results = [
                    run_image_system(system, app, trace, env, seed=scale.seed)
                    for trace in warped
                ]
                rows.append(
                    _mean_rows(results, resource=resource, think_time_ms=think * 1e3)
                )
    return rows


def fig10_convergence(
    scale: Optional[ImageExperimentScale] = None,
    resources: Sequence[str] = ("low", "med", "high"),
    systems: Sequence[str] = ("khameleon", "acc-1-1", "acc-1-5", "baseline"),
    pause_fraction: float = 0.6,
    hold_s: float = 10.0,
    sample_points: Sequence[float] = (0.05, 0.1, 0.2, 0.4, 0.8, 1.6, 3.2, 6.4),
) -> list[dict]:
    """Fig. 10: utility convergence after the user pauses on a request."""
    scale = scale or ImageExperimentScale()
    app, traces = scale.build()
    rows = []
    for resource in resources:
        env = RESOURCE_SETTINGS[resource]
        for system in systems:
            curves = [
                run_convergence(
                    app,
                    trace,
                    env,
                    system,
                    pause_s=trace.duration_s * pause_fraction,
                    hold_s=hold_s,
                    sample_points=sample_points,
                    seed=scale.seed,
                )
                for trace in traces
            ]
            for i, point in enumerate(sample_points):
                utilities = [curve[i][1] for curve in curves if i < len(curve)]
                rows.append(
                    {
                        "system": system,
                        "resource": resource,
                        "elapsed_ms": point * 1e3,
                        "utility": statistics.fmean(utilities) if utilities else 0.0,
                    }
                )
    return rows


def fig11_ablation(
    scale: Optional[ImageExperimentScale] = None,
    latencies_s: Sequence[float] = PAPER_REQUEST_LATENCIES,
    systems: Sequence[str] = (
        "khameleon",
        "acc-1-5",
        "baseline",
        "progressive",
        "predictor",
    ),
    bandwidth: float = 15_000_000.0,
    cache: int = 50_000_000,
) -> list[dict]:
    """Fig. 11: the ablation — prediction and progressive encoding
    each help, but only their combination gives Khameleon's profile."""
    return fig8_request_latency(scale, latencies_s, systems, bandwidth, cache)


def fig12_predictors(
    scale: Optional[ImageExperimentScale] = None,
    bandwidths: Sequence[float] = PAPER_BANDWIDTHS,
    systems: Sequence[str] = (
        "khameleon",
        "khameleon-oracle",
        "khameleon-uniform",
        "acc-1-5",
    ),
    cache: int = 50_000_000,
) -> list[dict]:
    """Fig. 12: predictor sensitivity (Uniform / Kalman / Oracle)."""
    scale = scale or ImageExperimentScale()
    app, traces = scale.build()
    rows = []
    for bw in bandwidths:
        env = DEFAULT_ENV.with_bandwidth(bw).with_cache(cache)
        for system in systems:
            results = [
                run_image_system(system, app, trace, env, seed=scale.seed)
                for trace in traces
            ]
            rows.append(_mean_rows(results, bandwidth_mbps=bw / 1e6))
    return rows


def fig13_cellular(
    scale: Optional[ImageExperimentScale] = None,
    networks: Sequence[str] = ("verizon", "att"),
    systems: Sequence[str] = ("khameleon", "acc-1-5"),
) -> list[dict]:
    """Fig. 13: Verizon/AT&T LTE traces, 100 ms request latency."""
    scale = scale or ImageExperimentScale()
    app, traces = scale.build()
    rows = []
    for network in networks:
        env = EnvironmentConfig(
            name=network,
            cellular=network,
            min_rtt_s=0.100,
            cache_bytes=50_000_000,
        )
        for system in systems:
            results = [
                run_image_system(system, app, trace, env, seed=scale.seed)
                for trace in traces
            ]
            rows.append(_mean_rows(results, network=network))
    return rows


def fig14_falcon(
    blocks_per_response: Sequence[int] = (1, 2, 4),
    predictors: Sequence[str] = ("kalman", "onhover"),
    backends: Sequence[str] = ("postgres", "scalable"),
    db_scales: Sequence[str] = ("small", "big"),
    trace_duration_s: float = 120.0,
    num_traces: int = 2,
    seed: int = 0,
) -> list[dict]:
    """Fig. 14: the Falcon port across blocks/response, predictor, and
    backend, on the Small and Big databases."""
    rows = []
    for db_scale in db_scales:
        for nb in blocks_per_response:
            app = FalconApp(blocks_per_response=nb)
            gen = FalconTraceGenerator(app, seed=seed)
            traces = [
                gen.generate(trace_duration_s, trace_id=i) for i in range(num_traces)
            ]
            for backend_kind in backends:
                for predictor in predictors:
                    results = [
                        run_falcon(
                            app,
                            trace,
                            DEFAULT_ENV,
                            predictor=predictor,
                            backend_kind=backend_kind,
                            db_scale=db_scale,
                            seed=seed,
                        )
                        for trace in traces
                    ]
                    rows.append(
                        _mean_rows(
                            results,
                            db=db_scale,
                            blocks=nb,
                            predictor=predictor,
                            backend=backend_kind,
                        )
                    )
    return rows


def _micro_distribution(n: int, seed: int) -> RequestDistribution:
    """A skewed distribution for scheduler micro-benchmarks."""
    rng = np.random.default_rng(seed)
    k = max(1, n // 8)
    ids = np.sort(rng.choice(n, size=k, replace=False)).astype(np.int64)
    raw = rng.random((4, k))
    probs = 0.9 * raw / raw.sum(axis=1, keepdims=True)
    residual = np.full(4, 0.1)
    return RequestDistribution(
        n=n,
        deltas_s=np.array([0.05, 0.15, 0.25, 0.5]),
        explicit_ids=ids,
        explicit_probs=probs,
        residual=residual,
    )


def fig15_ilp_runtime(
    num_requests: Sequence[int] = (5, 10, 15),
    cache_blocks: Sequence[int] = (10, 20, 30),
    blocks_per_request: Sequence[int] = (5, 10, 15),
    seed: int = 0,
) -> list[dict]:
    """Fig. 15: LP scheduler runtime on micro instances."""
    rows = []
    for n in num_requests:
        for cache in cache_blocks:
            for nb in blocks_per_request:
                gains = GainTable(LinearUtility(), [nb] * n)
                scheduler = ILPScheduler(gains=gains, cache_blocks=cache)
                dist = _micro_distribution(n, seed)
                start = time.perf_counter()
                solution = scheduler.solve(dist, slot_duration_s=0.01)
                elapsed = time.perf_counter() - start
                rows.append(
                    {
                        "requests": n,
                        "cache_blocks": cache,
                        "blocks_per_req": nb,
                        "runtime_ms": elapsed * 1e3,
                        "optimal": solution.optimal,
                    }
                )
    return rows


def _materialize_all(dist: RequestDistribution) -> RequestDistribution:
    """Expand a sparse distribution so *every* request is explicit.

    This is what the unoptimized scheduler of §5.3.1 pays: the P matrix
    covers all n requests instead of pooling the near-uniform mass into
    one meta-request.
    """
    dense = np.stack([dist.dense_at(float(d)) for d in dist.deltas_s])
    # threshold=0 keeps every request with non-zero mass explicit.
    return RequestDistribution.from_dense(dense, dist.deltas_s, threshold=0.0)


def fig16_greedy_runtime(
    num_requests: Sequence[int] = (10, 100, 1_000, 10_000),
    cache_blocks: Sequence[int] = (100, 500, 5_000),
    blocks_per_request: Sequence[int] = (50, 100, 200),
    meta_request: bool = True,
    seed: int = 0,
) -> list[dict]:
    """Fig. 16: greedy scheduler runtime for one full schedule.

    ``meta_request=False`` reproduces the *unoptimized* scheduler: the
    probability matrix is materialized for every request rather than
    pooling near-uniform mass (the paper reports 13× on 10k requests).
    """
    rows = []
    for n in num_requests:
        dist = _micro_distribution(n, seed)
        if not meta_request:
            dist = _materialize_all(dist)
        for cache in cache_blocks:
            for nb in blocks_per_request:
                gains = GainTable(LinearUtility(), [nb] * n)
                scheduler = GreedyScheduler(
                    gains=gains,
                    cache_blocks=cache,
                    meta_request=meta_request,
                    seed=seed,
                )
                start = time.perf_counter()
                scheduler.update_distribution(dist, slot_duration_s=0.01)
                schedule = scheduler.schedule_batch()
                elapsed = time.perf_counter() - start
                rows.append(
                    {
                        "requests": n,
                        "cache_blocks": cache,
                        "blocks_per_req": nb,
                        "runtime_ms": elapsed * 1e3,
                        "blocks_scheduled": len(schedule),
                        "materialized_frac": scheduler.materialized_fraction,
                    }
                )
    return rows


def fig17_greedy_vs_ilp(
    num_requests: Sequence[int] = (5, 10, 15),
    cache_blocks: int = 15,
    blocks_per_request: int = 5,
    seed: int = 0,
) -> list[dict]:
    """Fig. 17: greedy schedules vs optimal ILP schedules (Eq. 2 value)."""
    rows = []
    slot = 0.01
    for n in num_requests:
        gains = GainTable(LinearUtility(), [blocks_per_request] * n)
        dist = _micro_distribution(n, seed)

        ilp = ILPScheduler(gains=gains, cache_blocks=cache_blocks)
        start = time.perf_counter()
        solution = ilp.solve(dist, slot_duration_s=slot)
        ilp_ms = (time.perf_counter() - start) * 1e3
        ilp_value = expected_utility(solution.schedule, dist, gains, slot)

        greedy = GreedyScheduler(
            gains=gains, cache_blocks=cache_blocks, meta_request=True, seed=seed
        )
        start = time.perf_counter()
        greedy.update_distribution(dist, slot_duration_s=slot)
        schedule = greedy.schedule_batch()
        greedy_ms = (time.perf_counter() - start) * 1e3
        greedy_value = expected_utility(schedule, dist, gains, slot)

        rows.append(
            {
                "requests": n,
                "ilp_utility": ilp_value,
                "greedy_utility": greedy_value,
                "utility_ratio": ilp_value / greedy_value if greedy_value else float("inf"),
                "ilp_ms": ilp_ms,
                "greedy_ms": greedy_ms,
                "speedup": ilp_ms / greedy_ms if greedy_ms else float("inf"),
            }
        )
    return rows


def fig19_overpush(
    scale: Optional[ImageExperimentScale] = None,
    think_times_s: Sequence[float] = PAPER_THINK_TIMES,
    resources: Sequence[str] = ("low", "med", "high"),
    systems: Sequence[str] = ("khameleon", "acc-1-5"),
) -> list[dict]:
    """Fig. 19 / §B.2: overpush rate during the think-time sweep."""
    scale = scale or ImageExperimentScale()
    app, traces = scale.build()
    rows = []
    for resource in resources:
        env = RESOURCE_SETTINGS[resource]
        for think in think_times_s:
            warped = [rescale_think_times(t, think) for t in traces]
            for system in systems:
                results = [
                    run_image_system(system, app, trace, env, seed=scale.seed)
                    for trace in warped
                ]
                overpushes = [r.overpush for r in results if r.overpush is not None]
                rows.append(
                    {
                        "system": system,
                        "resource": resource,
                        "think_time_ms": think * 1e3,
                        "overpush_%": (
                            100.0 * statistics.fmean(overpushes) if overpushes else 0.0
                        ),
                    }
                )
    return rows


def appb1_prediction_frequency(
    scale: Optional[ImageExperimentScale] = None,
    intervals_s: Sequence[float] = (0.050, 0.150, 0.250, 0.350),
    resources: Sequence[str] = ("low", "med", "high"),
) -> list[dict]:
    """§B.1: sensitivity to how often predictions are shipped."""
    from .runner import run_khameleon  # local import keeps module load light

    scale = scale or ImageExperimentScale()
    app, traces = scale.build()
    rows = []
    for resource in resources:
        env = RESOURCE_SETTINGS[resource]
        for interval in intervals_s:
            results = [
                run_khameleon(
                    app,
                    trace,
                    env,
                    prediction_interval_s=interval,
                    seed=scale.seed,
                )
                for trace in traces
            ]
            rows.append(
                _mean_rows(results, resource=resource, interval_ms=interval * 1e3)
            )
    return rows

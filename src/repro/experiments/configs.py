"""Environment configurations from §6.1–§6.2.

The experiments sweep:

* fixed bandwidth 1.5–15 MB/s (default 5.625 MB/s),
* request latency 20–400 ms (default 100 ms), split per §6.1 into a
  network share (5–100 ms) and a simulated backend-processing share
  (15–300 ms) — the paper's endpoint values imply a consistent 1:3
  split, which this module adopts (20 ms → 5 + 15, 400 ms → 100 + 300),
* client cache 10–100 MB (default 50 MB),
* emulated Verizon/AT&T LTE cellular links with a 100 ms minimum RTT
  (Fig. 13),

plus the §6.2 composite settings: **low** (1.5 MB/s, 10 MB), **medium**
(5.625 MB/s, 50 MB), and **high** (15 MB/s, 100 MB) resources.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import TYPE_CHECKING, Optional

if TYPE_CHECKING:  # experiments sits above fleet; import for typing only
    from repro.chaos import ChaosConfig
    from repro.core.session import SessionConfig
    from repro.fleet import ArrivalConfig, CheckpointConfig, FleetConfig

from repro.sim.cellular import ATT_LTE, VERIZON_LTE, CellularTraceGenerator
from repro.clock import Clock
from repro.sim.fairshare import SharedDownlink
from repro.sim.link import ControlChannel, FixedRateLink, Link, TraceDrivenLink

__all__ = [
    "EnvironmentConfig",
    "FleetEnvironment",
    "DEFAULT_ENV",
    "DEFAULT_FLEET",
    "LOW_RESOURCE",
    "MED_RESOURCE",
    "HIGH_RESOURCE",
    "make_downlink",
    "make_uplink",
    "make_shared_downlink",
]

#: Fraction of the request-latency knob attributed to the network; the
#: §6.1 endpoints (20 ms = 5 net + 15 backend, 400 ms = 100 + 300) pin
#: this to 1/4.
NETWORK_SHARE = 0.25


@dataclass(frozen=True)
class EnvironmentConfig:
    """One experimental condition's resources."""

    name: str = "default"
    bandwidth_bytes_per_s: float = 5_625_000.0
    request_latency_s: float = 0.100
    cache_bytes: int = 50_000_000
    cellular: Optional[str] = None  # None | "verizon" | "att"
    min_rtt_s: Optional[float] = None  # override network RTT (cellular: 100 ms)

    def __post_init__(self) -> None:
        if self.bandwidth_bytes_per_s <= 0:
            raise ValueError("bandwidth must be positive")
        if self.request_latency_s < 0:
            raise ValueError("request latency must be non-negative")
        if self.cache_bytes <= 0:
            raise ValueError("cache must be positive")
        if self.cellular not in (None, "verizon", "att"):
            raise ValueError(f"unknown cellular profile {self.cellular!r}")

    @property
    def network_rtt_s(self) -> float:
        """Round-trip network latency share of the request latency."""
        if self.min_rtt_s is not None:
            return self.min_rtt_s
        return self.request_latency_s * NETWORK_SHARE

    @property
    def one_way_latency_s(self) -> float:
        return self.network_rtt_s / 2.0

    @property
    def backend_delay_s(self) -> float:
        """Simulated backend-processing share of the request latency."""
        return self.request_latency_s * (1.0 - NETWORK_SHARE)

    def with_bandwidth(self, bytes_per_s: float) -> "EnvironmentConfig":
        return replace(self, bandwidth_bytes_per_s=bytes_per_s)

    def with_cache(self, cache_bytes: int) -> "EnvironmentConfig":
        return replace(self, cache_bytes=cache_bytes)

    def with_request_latency(self, latency_s: float) -> "EnvironmentConfig":
        return replace(self, request_latency_s=latency_s)


DEFAULT_ENV = EnvironmentConfig()


@dataclass(frozen=True)
class FleetEnvironment:
    """A multi-tenant serving condition: N users over one environment.

    The single-user sweeps hold the environment fixed and vary the
    system; fleet experiments additionally vary how many sessions
    contend for the one downlink and backend.  ``weights`` sets the
    downlink fair shares (None = equal); ``backend_concurrency`` sizes
    the *shared* §5.4 speculation budget over the common backend
    (``weighted_backend`` slices it by the downlink weights); and
    ``arrival`` selects the session churn process (None = the static
    all-at-t0 fleet).

    Validation of the fleet shape lives in
    :class:`repro.fleet.FleetConfig`, which :meth:`fleet_config` builds.
    """

    num_sessions: int = 8
    env: EnvironmentConfig = DEFAULT_ENV
    weights: Optional[tuple[float, ...]] = None
    backend_concurrency: Optional[int] = None
    weighted_backend: bool = False
    batched_prediction: bool = True
    #: Batch the predictor decode inside the coalesced prediction tick
    #: (stacked Kalman extrapolation + truncated-Gaussian passes, and
    #: one pass per Markov / shared-chain group, instead of N
    #: per-session loops).  Byte-identical distributions; see
    #: :class:`repro.fleet.FleetConfig`.
    batched_decode: bool = True
    arrival: Optional["ArrivalConfig"] = None
    #: Fault schedule for robustness runs (None = well-behaved world).
    #: Backend faults are wrapped around the fleet's backend, link
    #: outages around the shared downlink, and worker-crash schedules
    #: are consumed by the sharded coordinator's supervision loop.
    chaos: Optional["ChaosConfig"] = None
    #: Durable-session checkpointing (sharded runs): capture cadence
    #: plus the ``--checkpoint-out`` / ``--checkpoint-in`` drain and
    #: restore paths.  ``None`` (or an inert config) changes nothing —
    #: bit-identical to pre-checkpoint behavior (test-enforced).
    checkpoint: Optional["CheckpointConfig"] = None

    def fleet_config(self, session: "SessionConfig") -> "FleetConfig":
        """Map this condition onto the fleet layer's config.

        ``session`` is the per-session :class:`SessionConfig` template;
        the single source of truth for field meaning and validation is
        :class:`repro.fleet.FleetConfig`.
        """
        from repro.fleet import FleetConfig

        return FleetConfig(
            num_sessions=self.num_sessions,
            weights=self.weights,
            backend_concurrency=self.backend_concurrency,
            weighted_backend=self.weighted_backend,
            batched_prediction=self.batched_prediction,
            batched_decode=self.batched_decode,
            arrival=self.arrival,
            session=session,
            chaos=self.chaos,
        )

    def with_sessions(self, n: int) -> "FleetEnvironment":
        return replace(self, num_sessions=n, weights=None)


DEFAULT_FLEET = FleetEnvironment()

#: §6.2 composite resource settings for the think-time and convergence
#: experiments.
LOW_RESOURCE = EnvironmentConfig(
    name="low", bandwidth_bytes_per_s=1_500_000.0, cache_bytes=10_000_000
)
MED_RESOURCE = EnvironmentConfig(
    name="med", bandwidth_bytes_per_s=5_625_000.0, cache_bytes=50_000_000
)
HIGH_RESOURCE = EnvironmentConfig(
    name="high", bandwidth_bytes_per_s=15_000_000.0, cache_bytes=100_000_000
)


def make_downlink(sim: Clock, env: EnvironmentConfig, seed: int = 0) -> Link:
    """Server→client data link for a condition.

    Cellular conditions generate a Verizon/AT&T-like LTE delivery trace
    (Fig. 13); otherwise the link is the fixed-rate netem analogue.
    """
    if env.cellular is None:
        return FixedRateLink(
            sim,
            bytes_per_second=env.bandwidth_bytes_per_s,
            propagation_delay_s=env.one_way_latency_s,
        )
    profile = VERIZON_LTE if env.cellular == "verizon" else ATT_LTE
    trace = CellularTraceGenerator(profile, seed=seed).generate()
    return TraceDrivenLink(sim, trace, propagation_delay_s=env.one_way_latency_s)


def make_uplink(sim: Clock, env: EnvironmentConfig) -> ControlChannel:
    """Client→server control path (requests, predictor states, rates)."""
    return ControlChannel(sim, latency_s=env.one_way_latency_s)


def make_shared_downlink(
    sim: Clock,
    env: EnvironmentConfig,
    seed: int = 0,
    chaos: Optional["ChaosConfig"] = None,
) -> SharedDownlink:
    """A weighted fair-sharing arbiter over the condition's downlink.

    With a chaos config carrying link outage windows, the underlying
    link is wrapped in an :class:`~repro.sim.failures.OutageLink`
    before the fair-share arbiter sees it — every session's fair share
    collapses together, as on a real dead link.
    """
    link = make_downlink(sim, env, seed=seed)
    if chaos is not None:
        link = chaos.wrap_link(link)
    return SharedDownlink(sim, link)

"""End-to-end experiment drivers (§6).

Each driver assembles one *system under test* over the shared simulated
substrate, replays an interaction trace against it, and returns a
:class:`RunResult` with the §6.1 metrics:

* :func:`run_khameleon` — the full Khameleon stack over the image
  application's file-system backend (optionally without progressive
  encoding: the Fig. 11 "Predictor" ablation arm).
* :func:`run_classic` — the request-response architectures: Baseline,
  Progressive (first block only), and the ACC-<acc>-<hor> idealized
  prefetchers.
* :func:`run_falcon` — Khameleon over the Falcon port with the
  PostgreSQL-like or ScalableSQL backend (§6.4).
* :func:`run_convergence` — the Fig. 10 protocol: pause the trace and
  track utility upcalls until quality converges.
"""

from __future__ import annotations

import math
import os
import tempfile
import time
from dataclasses import dataclass, field, replace
from typing import Any, Callable, Optional, Sequence

from repro.baselines.acc import ACCPrefetcher, acc_threshold
from repro.baselines.classic import ClassicConfig, ClassicSession
from repro.core.cache_manager import RequestOutcome
from repro.core.session import KhameleonSession, SessionConfig
from repro.encoding.naive import SingleBlockEncoder
from repro.backends.filesystem import FileSystemBackend
from repro.fleet import KhameleonFleet
from repro.fleet.checkpoint import (
    CTRL_KEY,
    CheckpointConfig,
    CheckpointStore,
    FleetCheckpoint,
    ShardCheckpoint,
    capture_session,
    capture_shard,
    migrate_out_of,
    split_ctrl,
    unwrap_sync_payload,
    wrap_sync_payload,
)
from repro.fleet.sharding import SupervisionPolicy
from repro.metrics.collector import MetricSummary, collect, convergence_curve, overpush_rate
from repro.metrics.fleet import (
    CohortSummary,
    FleetSummary,
    collect_cohorts,
    collect_fleet,
    early_hit_rate,
    jain_fairness,
    pool_snapshots,
    pool_transport_counters,
)
from repro.predictors.base import MouseEvent
from repro.sim.engine import Simulator
from repro.workloads.falcon import FalconApp, FalconTrace
from repro.workloads.image_app import ImageExplorationApp
from repro.workloads.trace import InteractionTrace, TraceEvent

from .configs import (
    EnvironmentConfig,
    FleetEnvironment,
    make_downlink,
    make_shared_downlink,
    make_uplink,
)

__all__ = [
    "RunResult",
    "FleetRunResult",
    "ImageAppSpec",
    "ShardFleetSpec",
    "run_khameleon",
    "run_classic",
    "run_falcon",
    "run_fleet",
    "run_fleet_sharded",
    "run_convergence",
    "run_image_system",
    "extend_with_pause",
]

#: Simulated seconds to keep running after the trace ends, so in-flight
#: blocks land and late upcalls fire (Khameleon pushes forever; classic
#: sessions instead drain their event queue completely).
DEFAULT_DRAIN_S = 3.0

#: Default worker supervision for the sharded fleet path: two restarts
#: per shard with exponential backoff.  Pass ``supervision=None`` to
#: :func:`run_fleet_sharded` for the original die-together behaviour.
_DEFAULT_SUPERVISION = SupervisionPolicy()


@dataclass
class RunResult:
    """Everything a figure needs from one (system, trace, env) run."""

    system: str
    trace_name: str
    env: EnvironmentConfig
    summary: MetricSummary
    outcomes: list[RequestOutcome]
    blocks_pushed: int = 0
    bytes_pushed: int = 0
    overpush: Optional[float] = None
    extras: dict = field(default_factory=dict)

    def row(self, **extra_columns: Any) -> dict:
        """Flatten into a report row (figure drivers add sweep columns)."""
        row = {"system": self.system, **extra_columns, **self.summary.as_dict()}
        if self.overpush is not None:
            row["overpush_%"] = 100.0 * self.overpush
        return row


def _replay(
    sim: Simulator,
    trace: InteractionTrace,
    observe,
    request,
    on_request_position=None,
    offset_s: float = 0.0,
) -> None:
    """Schedule the trace's events into the simulator.

    ``observe(event)`` fires for every sample; ``request(id)`` for
    request-bearing samples; ``on_request_position(i)`` (optional)
    additionally reports the request's ordinal position — the hook the
    ACC prefetchers use to read the future.  ``offset_s`` shifts the
    whole trace (a churn fleet replays each user's trace from the
    moment they arrive, not from t = 0).
    """
    position = 0
    for event in trace.events:
        sim.schedule_at(offset_s + event.time_s, observe, MouseEvent(event.x, event.y))
        if event.request is not None:
            sim.schedule_at(offset_s + event.time_s, request, event.request)
            if on_request_position is not None:
                sim.schedule_at(offset_s + event.time_s, on_request_position, position)
            position += 1


def run_khameleon(
    app: ImageExplorationApp,
    trace: InteractionTrace,
    env: EnvironmentConfig,
    predictor: str = "kalman",
    progressive: bool = True,
    drain_s: float = DEFAULT_DRAIN_S,
    prediction_interval_s: float = 0.150,
    seed: int = 0,
    gamma: float = 1.0,
) -> RunResult:
    """Replay ``trace`` against a full Khameleon session.

    ``progressive=False`` swaps the app's progressive encoder for a
    single-block one (whole responses pushed speculatively — the
    Fig. 11 "Predictor" arm); the nominal block size then becomes the
    mean response size so cache and slot accounting stay consistent.
    """
    sim = Simulator()
    downlink = make_downlink(sim, env, seed=seed)
    uplink = make_uplink(sim, env)

    if progressive:
        backend = app.make_backend(sim, fetch_delay_s=env.backend_delay_s)
        num_blocks = app.num_blocks
        block_bytes = app.block_bytes
    else:
        encoder = SingleBlockEncoder(app.response_bytes)
        backend = FileSystemBackend(sim, encoder, fetch_delay_s=env.backend_delay_s)
        num_blocks = [1] * app.num_requests
        block_bytes = int(app.mean_response_bytes())

    config = SessionConfig(
        cache_bytes=env.cache_bytes,
        block_bytes=block_bytes,
        prediction_interval_s=prediction_interval_s,
        scheduler_seed=seed,
        gamma=gamma,
        initial_bandwidth_bytes_per_s=env.bandwidth_bytes_per_s,
    )
    session = KhameleonSession(
        sim=sim,
        backend=backend,
        predictor=app.make_predictor(predictor, trace=trace),
        utility=app.utility,
        num_blocks=num_blocks,
        downlink=downlink,
        uplink=uplink,
        config=config,
    )
    _replay(sim, trace, session.client.observe, session.client.request)
    session.start()
    sim.run(until=trace.duration_s + drain_s)
    session.stop()

    outcomes = session.cache_manager.outcomes
    name = "khameleon" if progressive else "predictor"
    if predictor != "kalman":
        name = f"khameleon-{predictor}"
    if not progressive and predictor != "kalman":
        name = f"predictor-{predictor}"
    return RunResult(
        system=name,
        trace_name=trace.name,
        env=env,
        summary=collect(outcomes),
        outcomes=outcomes,
        blocks_pushed=session.sender.blocks_sent,
        bytes_pushed=session.sender.bytes_sent,
        overpush=overpush_rate(session.sender.blocks_sent, outcomes),
        extras={
            "states_received": session.server.states_received,
            "backend": backend.stats.snapshot(),
            "bandwidth_estimate": session.estimator.estimate,
        },
    )


@dataclass
class FleetRunResult:
    """Everything a fleet experiment needs from one multi-session run."""

    system: str
    fleet_env: FleetEnvironment
    #: ``None`` only for a routed (sharded-worker) fleet none of whose
    #: sessions registered a request — full fleets always have one.
    summary: Optional[FleetSummary]
    diagnostics: dict
    trace_names: list[str] = field(default_factory=list)
    cohorts: list[CohortSummary] = field(default_factory=list)
    session_labels: Optional[list[str]] = None  # plan indices under churn

    def rows(self, **extra_columns: Any) -> list[dict]:
        """Per-session rows plus the pooled ``fleet`` row."""
        return self.summary.rows(
            labels=self.session_labels, system=self.system, **extra_columns
        )

    def cohort_rows(self, **extra_columns: Any) -> list[dict]:
        """One row per arrival cohort (empty for a static fleet run)."""
        return [c.row(system=self.system, **extra_columns) for c in self.cohorts]

    def aggregate_row(self, **extra_columns: Any) -> dict:
        """One row: the pooled metrics plus sharing diagnostics."""
        row = {
            "system": self.system,
            "sessions": self.fleet_env.num_sessions,
            **extra_columns,
            **self.summary.aggregate.as_dict(),
            "link_fairness": self.diagnostics["link_fairness"],
            "shared_hit_%": 100.0 * self.diagnostics["shared_hit_rate"],
        }
        prediction = self.diagnostics.get("prediction")
        if prediction is not None and prediction["ticks"]:
            # Coalescing factor of the fleet schedule service: states
            # recomputed per batched sim event (≈ N for a busy fleet).
            row["pred_batch"] = (
                prediction["sessions_recomputed"]
                / max(1, prediction["batched_recomputes"])
            )
        churn = self.diagnostics.get("churn")
        if churn is not None:
            row["admitted"] = churn["admitted"]
            row["rejected"] = churn["rejected"]
            row["early_hit_%"] = 100.0 * self.diagnostics["early_hit_rate"]
        return row


def _fleet_predictor_factory(
    app: ImageExplorationApp, predictor: str, traces, sim: Simulator,
    shared_prior=None,
):
    """Per-session predictor factory, plus any fleet-shared state.

    ``shared-markov`` is the SeLeP-style deployment: one crowd-warmed
    :class:`~repro.predictors.shared.SharedTransitionPrior` for the whole
    fleet, blended into each session's private chain — cold arrivals
    start from the aggregate transition structure.  ``shared_prior``
    lets the caller supply a pre-populated prior (crowd structure
    carried over from earlier runs — the persistence direction in the
    ROADMAP — or a synthetic warm-up for benchmarks); ``None`` builds a
    fresh one.  Returns ``(make_predictor, prior_or_None)``.

    The factory is invoked at *admission* time.  The oracle reads the
    user's future by absolute simulator time, so under churn its trace
    is re-based to the arrival instant (``sim.now`` at admission) to
    match the replay's timeline; ``shifted(0)`` is the identity, so the
    static path is untouched.
    """
    if predictor == "shared-markov":
        from repro.predictors.shared import (
            SharedTransitionPrior,
            make_shared_markov_predictor,
        )

        if shared_prior is None:
            prior = SharedTransitionPrior(app.num_requests)
        elif isinstance(shared_prior, (str, os.PathLike)):
            # Warm-start from a prior persisted by an earlier run.
            prior = SharedTransitionPrior.load(shared_prior, n=app.num_requests)
        else:
            prior = shared_prior
        if prior.n != app.num_requests:
            raise ValueError(
                f"shared prior over {prior.n} requests, app has {app.num_requests}"
            )
        return (
            lambda i: make_shared_markov_predictor(app.num_requests, prior),
            prior,
        )
    if shared_prior is not None:
        raise ValueError(
            f"shared_prior only applies to predictor='shared-markov' "
            f"(got {predictor!r})"
        )
    if predictor == "oracle":
        return (
            lambda i: app.make_predictor(
                "oracle", trace=traces[i].shifted(sim.now)
            ),
            None,
        )
    return (lambda i: app.make_predictor(predictor, trace=traces[i]), None)


def run_fleet(
    app: ImageExplorationApp,
    traces: Sequence[InteractionTrace],
    fleet_env: FleetEnvironment,
    predictor: str = "kalman",
    drain_s: float = DEFAULT_DRAIN_S,
    seed: int = 0,
    cohort_width_s: float = 5.0,
    early_k: int = 5,
    shared_prior=None,
    *,
    session_route: Optional[Callable[[int], bool]] = None,
    expected_sessions: Optional[float] = None,
    run_driver: Optional[Callable] = None,
) -> FleetRunResult:
    """Replay one trace per session against a shared-resource fleet.

    The keyword-only tail is the sharding seam
    (:func:`run_fleet_sharded` drives it): ``session_route`` builds
    only the sessions a shard owns (indices stay global, so seeds and
    weights match the unsharded fleet), ``expected_sessions`` overrides
    the bandwidth-prior population, and ``run_driver(sim, until, fleet,
    prior)`` replaces the plain ``sim.run(until=...)`` so a worker can
    chunk the run at delta-sync barriers.  All default to the
    unsharded behaviour.  A routed fleet whose sessions registered no
    requests yields ``summary=None`` instead of raising.

    ``shared_prior`` (``shared-markov`` only) seeds the fleet-wide
    crowd prior with an existing
    :class:`~repro.predictors.shared.SharedTransitionPrior` — or a
    path to one persisted with
    :meth:`~repro.predictors.shared.SharedTransitionPrior.save` —
    instead of a cold one.

    All sessions explore the same application over one backend (shared
    response cache, in-flight dedup, shared §5.4 throttle budget) and
    one downlink split by weighted fair queueing.  ``traces[i]`` drives
    session ``i``.

    With a static ``fleet_env.arrival`` every session starts at t = 0
    and the run lasts until the longest trace ends plus ``drain_s``.
    With a churn config the fleet's
    :class:`~repro.fleet.lifecycle.SessionManager` admits sessions as
    they arrive; each admitted session replays its trace from its
    arrival instant (truncated by departure — the client drops the
    tail), and the diagnostics gain admission/cohort/cold-start views.
    """
    if len(traces) != fleet_env.num_sessions:
        raise ValueError(
            f"{len(traces)} traces for {fleet_env.num_sessions} sessions"
        )
    env = fleet_env.env
    sim = Simulator()
    shared_downlink = make_shared_downlink(sim, env, seed=seed, chaos=fleet_env.chaos)
    backend = app.make_backend(sim, fetch_delay_s=env.backend_delay_s)
    make_predictor, prior = _fleet_predictor_factory(
        app, predictor, traces, sim, shared_prior=shared_prior
    )

    config = fleet_env.fleet_config(
        SessionConfig(
            cache_bytes=env.cache_bytes,
            block_bytes=app.block_bytes,
            scheduler_seed=seed,
            initial_bandwidth_bytes_per_s=env.bandwidth_bytes_per_s,
        )
    )
    if session_route is not None or expected_sessions is not None:
        config = replace(
            config,
            session_route=session_route,
            expected_sessions=expected_sessions,
        )
    fleet = KhameleonFleet(
        sim=sim,
        backend=backend,
        make_predictor=make_predictor,
        utility=app.utility,
        num_blocks=app.num_blocks,
        downlink=shared_downlink,
        make_uplink=lambda i: make_uplink(sim, env),
        config=config,
    )

    def drive(until: float) -> None:
        if run_driver is None:
            sim.run(until=until)
        else:
            run_driver(sim, until, fleet, prior)

    if fleet.manager is None:
        # session_indices, not enumerate: a routed (sharded) fleet owns
        # a subset of the plan, and traces are indexed globally.
        for i, session in zip(fleet.session_indices, fleet.sessions):
            _replay(sim, traces[i], session.client.observe, session.client.request)
        fleet.start()
        drive(max(t.duration_s for t in traces) + drain_s)
        fleet.stop()
    else:

        def replay_from_arrival(record) -> None:
            _replay(
                sim,
                traces[record.index],
                record.session.client.observe,
                record.session.client.request,
                offset_s=record.admitted_at,
            )

        fleet.manager.on_admit = replay_from_arrival
        fleet.start()
        horizon = fleet.manager.horizon_s(lambda i: traces[i].duration_s)
        drive(horizon + drain_s)
        fleet.stop()

    diagnostics = fleet.report()
    if prior is not None:
        diagnostics["shared_prior"] = prior.snapshot()
    outcomes_by_session = fleet.outcomes_by_session()
    cohorts: list[CohortSummary] = []
    if fleet.manager is not None:
        # fleet.sessions and the manager's admitted records share
        # admission order, so these streams and times are parallel.
        cohorts = collect_cohorts(
            outcomes_by_session,
            fleet.manager.arrival_times(),
            cohort_width_s=cohort_width_s,
        )
        rates = [
            early_hit_rate(o, first_k=early_k) for o in outcomes_by_session if o
        ]
        diagnostics["early_hit_rate"] = sum(rates) / len(rates) if rates else 0.0

    return FleetRunResult(
        system=f"fleet-{predictor}",
        fleet_env=fleet_env,
        summary=fleet.summary() if any(outcomes_by_session) else None,
        diagnostics=diagnostics,
        trace_names=[t.name for t in traces],
        cohorts=cohorts,
        session_labels=(
            None
            if fleet.manager is None
            else [str(r.index) for r in fleet.manager.admitted_records]
        ),
    )


@dataclass(frozen=True)
class ImageAppSpec:
    """Spawn-safe recipe for an :class:`ImageExplorationApp`.

    Shard workers run in fresh interpreters, so the application must
    cross the process boundary as a *recipe*, not an object (the app
    holds an image store, encoder, and utility closure).  The synthetic
    store is a pure function of ``(num_requests, seed)``, so every
    worker rebuilds a bit-identical app from these five numbers.
    """

    rows: int
    cols: int
    cell_px: float = 20.0
    block_bytes: int = 50_000
    seed: int = 7

    @classmethod
    def of(cls, app: ImageExplorationApp) -> "ImageAppSpec":
        layout = app.layout
        return cls(
            rows=layout.rows,
            cols=layout.cols,
            cell_px=layout.cell_width,
            block_bytes=app.block_bytes,
            seed=app.seed,
        )

    def build(self) -> ImageExplorationApp:
        return ImageExplorationApp(
            rows=self.rows,
            cols=self.cols,
            cell_px=self.cell_px,
            block_bytes=self.block_bytes,
            seed=self.seed,
        )


@dataclass
class ShardFleetSpec:
    """Everything one shard worker needs, pickled through spawn.

    ``traces`` and ``fleet_env`` are the *global* fleet description —
    every worker gets all of it and derives its own slice (route,
    bandwidth share, admission-cap share) from ``shard``/``num_shards``,
    so the shard split is a pure function of the spec and the coordinator
    never has to serialize per-shard variants.
    """

    app_spec: ImageAppSpec
    traces: list[InteractionTrace]
    fleet_env: FleetEnvironment
    predictor: str
    shard: int
    num_shards: int
    #: Absolute sim times of the delta-sync barriers (empty = no sync).
    sync_points: tuple[float, ...] = ()
    drain_s: float = DEFAULT_DRAIN_S
    seed: int = 0
    cohort_width_s: float = 5.0
    early_k: int = 5
    #: Warm-start prior file every shard loads (never an object: the
    #: prior's count table is not picklable, and one file fans out to
    #: W workers without W copies in the coordinator's heap).
    shared_prior_path: Optional[str] = None
    #: Which incarnation of this shard's worker this is.  The original
    #: spawn is attempt 0; supervision bumps it on every respawn.  Chaos
    #: worker-crash schedules only fire on attempt 0, so a replacement
    #: worker does not re-crash into the same injected fault.
    attempt: int = 0
    #: Capture a :class:`~repro.fleet.checkpoint.ShardCheckpoint` every
    #: this many completed sync rounds and piggyback it on the barrier
    #: exchange (0 = checkpointing off: barrier payloads stay exactly
    #: the historical bare deltas, bit-identical to pre-checkpoint runs).
    checkpoint_cadence: int = 0
    #: Global index of ``sync_points[0]`` in the full barrier schedule
    #: (respawned workers run a suffix; checkpoints carry global rounds).
    first_round: int = 0
    #: The shard's last coordinator-held checkpoint.  A respawned (or
    #: re-absorbed) worker pauses its replay at ``restore.sim_time_s``,
    #: re-captures, and compares digests — restore-in-place, verified
    #: rather than assumed.
    restore: Optional[ShardCheckpoint] = None
    #: Path to a :class:`~repro.fleet.checkpoint.FleetCheckpoint` bundle
    #: (``--checkpoint-in``): the worker counts its own checkpointed
    #: sessions as resumed and pre-merges *other* shards' prior deltas,
    #: so re-broadcasts of pre-drain state dedup exactly.
    resume_from: Optional[str] = None
    #: Stop cleanly after completing this global sync round (graceful
    #: drain): skip the rest of the run, ship partial results plus a
    #: final checkpoint.
    drain_after_round: Optional[int] = None
    #: Explicit session ownership, overriding the hash route.  A mid-run
    #: joiner owns exactly the sessions the grown ring moved to it — not
    #: everything the ring *would* give it, since sessions that finished
    #: before the join never migrate.
    route_indices: Optional[tuple[int, ...]] = None
    #: ``(new_num_shards, at_round, at_time_s)``: a member joins the
    #: fleet after global sync round ``at_round``.  At that barrier this
    #: worker captures and retires every owned session the grown ring
    #: routes to the new member, shipping the checkpoints on the barrier
    #: payload.  A respawned worker whose suffix starts *after* the join
    #: replays the same retirement at the same sim time instead, so its
    #: deterministic restore matches the stored digests.
    grow_to: Optional[tuple[int, int, float]] = None
    #: Adoption orders re-applied on respawn: a worker that previously
    #: adopted a lost shard's sessions (via a ``peers``-borne control
    #: message) must re-adopt them at the same sim time when it is
    #: itself replaced, or its replay would silently drop them.  Each
    #: entry is ``{"checkpoint": <ShardCheckpoint payload>,
    #: "indices": [...], "at_s": float}``.
    adopt_orders: tuple = ()


def _shard_owned(total: int, shard: int, num_shards: int) -> list[int]:
    from repro.fleet.sharding import shard_of

    return [i for i in range(total) if shard_of(i, num_shards) == shard]


def _suffix_trace(
    trace: InteractionTrace, requests_seen: int, not_before_s: float
) -> Optional[InteractionTrace]:
    """The remainder of ``trace`` after its first ``requests_seen``
    requests, shifted to start no earlier than ``not_before_s``.

    This is how a migrated session resumes from its checkpointed
    sequence position: the first ``requests_seen`` request-bearing
    events (and the observe-only samples interleaved before them) are
    already served and drop out; everything after replays at its
    original absolute sim time, clamped up to the adoption point (the
    clamp is monotone, so event order survives).  Returns ``None`` for
    a session with no requests left — finished sessions don't migrate.
    """
    seen = 0
    remainder: list[TraceEvent] = []
    for event in trace.events:
        if seen >= requests_seen:
            remainder.append(event)
        elif event.request is not None:
            seen += 1
    if not any(e.request is not None for e in remainder):
        return None
    return InteractionTrace(
        events=[
            TraceEvent(
                time_s=max(e.time_s, not_before_s),
                x=e.x,
                y=e.y,
                request=e.request,
            )
            for e in remainder
        ],
        name=f"{trace.name}+migrated",
    )


def _sharded_fleet_worker(spec: ShardFleetSpec, channel) -> dict:
    """Run one shard's fleet; exchange prior deltas at each barrier.

    Executes in a spawned worker process (entry point of
    :func:`run_fleet_sharded`'s :class:`~repro.fleet.sharding.ShardTask`).
    Wraps the ordinary :func:`run_fleet` with a route that keeps only
    owned sessions, resources scaled to the owned share — bandwidth,
    admission cap, backend budget, and expected population all scale by
    ``owned/total``, so each *session's* slice matches the unsharded
    fleet's — and a run driver that pauses at every sync barrier to
    trade :class:`~repro.predictors.shared.PriorDelta` snapshots with
    the other shards.  Returns the raw per-shard material the
    coordinator pools (outcome streams, fairness samples, counter
    snapshots, the shard's final prior contribution, CPU timings).
    """
    from repro.fleet.sharding import shard_of

    k, num_shards = spec.shard, spec.num_shards
    total = spec.fleet_env.num_sessions
    if spec.route_indices is not None:
        owned = sorted(spec.route_indices)
    else:
        owned = _shard_owned(total, k, num_shards)
    owned_set = set(owned)
    share = len(owned) / total

    env = spec.fleet_env.env
    # A shard the hash left empty still runs (it must show up at every
    # sync barrier), just over an epsilon link nobody will use.  The
    # max() is exact at share=1.0, preserving W=1 bit-identity.
    fleet_env = replace(
        spec.fleet_env,
        env=env.with_bandwidth(env.bandwidth_bytes_per_s * max(share, 1e-9)),
    )
    arrival = fleet_env.arrival
    if arrival is not None and arrival.max_concurrent is not None:
        fleet_env = replace(
            fleet_env,
            arrival=replace(
                arrival,
                max_concurrent=max(1, math.ceil(arrival.max_concurrent * share)),
            ),
        )
    if fleet_env.backend_concurrency is not None:
        fleet_env = replace(
            fleet_env,
            backend_concurrency=max(
                1, math.ceil(fleet_env.backend_concurrency * share)
            ),
        )
    if spec.fleet_env.arrival is None:
        expected_total = float(total)
    else:
        expected_total = spec.fleet_env.arrival.expected_concurrency(total)

    # Injected worker-crash schedule: the original worker (attempt 0)
    # dies hard — no cleanup, no error message, exactly like a kill -9
    # — right before its scheduled barrier, so the coordinator sees a
    # mid-protocol death.  Replacements never re-crash.
    chaos = spec.fleet_env.chaos
    crash_at: Optional[int] = None
    if chaos is not None and spec.attempt == 0:
        crash_at = chaos.crash_round(k)

    state: dict = {}

    def drive(sim, until, fleet, prior) -> None:
        state["fleet"], state["prior"] = fleet, prior
        if prior is not None:
            prior.enable_sharding(f"shard{k}")
        n_requests = spec.app_spec.rows * spec.app_spec.cols
        cadence = spec.checkpoint_cadence

        # --checkpoint-in resume: count our checkpointed sessions as
        # resumed and pre-merge the *other* shards' stored prior
        # contributions.  Our own contribution is deliberately not
        # merged — the deterministic replay re-observes it — and the
        # CRDT's per-origin mass tracking makes the peers' later live
        # re-broadcasts of pre-drain state apply as exact diffs.
        # Replacement workers (attempt >= 1) skip the merge: their warm
        # seed is the coordinator aggregate, which holds these already.
        if spec.resume_from is not None:
            bundle = FleetCheckpoint.load(spec.resume_from, n=n_requests)
            own = bundle.shards.get(k)
            if own is not None:
                state["resumed_sessions"] = len(own.sessions)
            if prior is not None and spec.attempt == 0:
                for shard_index, ckpt in bundle.shards.items():
                    if shard_index == k:
                        continue
                    peer_delta = ckpt.prior_delta_object()
                    if peer_delta is not None:
                        prior.merge_delta(peer_delta)

        sent_vv: dict[int, int] = {}
        cpu_run = 0.0
        ckpt_cpu = 0.0
        taken = 0
        last_round: Optional[int] = None
        wall_start = time.perf_counter()

        def run_chunk(t: float) -> None:
            nonlocal cpu_run
            cpu_start = time.process_time()
            sim.run(until=t)
            cpu_run += time.process_time() - cpu_start

        def capture(round_index: int, at_s: float) -> ShardCheckpoint:
            nonlocal ckpt_cpu, taken, last_round
            cpu_start = time.process_time()
            ckpt = capture_shard(
                fleet,
                prior,
                shard=k,
                num_shards=num_shards,
                round_index=round_index,
                sim_time_s=at_s,
                n=n_requests,
            )
            ckpt_cpu += time.process_time() - cpu_start
            taken += 1
            last_round = round_index
            return ckpt

        migrated_in: list[int] = []
        migrated_out: list[int] = []

        def adopt_sessions(order: dict, at_s: float, record: bool = True) -> None:
            """Take over a lost shard's sessions from its checkpoint.

            Each adopted session is admitted into this worker's live
            fleet and resumes from its checkpointed request position:
            the suffix of its trace replays at absolute sim times,
            clamped up to the adoption barrier (events the dead shard
            would have served between its last checkpoint and now fire
            immediately — late, but not lost).
            """
            ckpt = ShardCheckpoint.from_payload(order["checkpoint"])
            wanted = set(order.get("indices", ()))
            for sc in ckpt.sessions:
                if sc.index not in wanted:
                    continue
                suffix = _suffix_trace(
                    spec.traces[sc.index], sc.requests_seen, at_s
                )
                if suffix is None:
                    continue  # finished before the crash; nothing to resume
                fleet._admit_session(sc.index)
                session = fleet.sessions[-1]
                session.start()
                _replay(
                    sim, suffix, session.client.observe, session.client.request
                )
                if record:
                    migrated_in.append(sc.index)

        def donate_sessions(at_s: float, record: bool = True) -> dict:
            """Capture-and-retire every owned session the grown ring
            routes to the joining member; ship the checkpoints."""
            new_w = spec.grow_to[0]
            moving = []
            for idx, session in zip(
                list(fleet.session_indices), list(fleet.sessions)
            ):
                if shard_of(idx, new_w) != new_w - 1:
                    continue
                sc = capture_session(session, idx)
                if _suffix_trace(spec.traces[idx], sc.requests_seen, at_s) is None:
                    continue  # finished sessions have nothing to move
                moving.append((session, sc))
            for session, _sc in moving:
                fleet._retire_session(session)
            if record:
                migrated_out.extend(sc.index for _, sc in moving)
            return {
                "from_shard": k,
                "at_s": at_s,
                "sessions": [sc.to_payload() for _, sc in moving],
            }

        # Deterministic pre-steps for replacement workers, replayed in
        # sim-time order before the barrier suffix: re-apply adoptions
        # this worker's predecessor performed, re-retire sessions it
        # donated to a joiner, and pause at the restore checkpoint to
        # verify the replay against the stored digests.
        pre_steps: list[tuple[float, int, Callable[[], None]]] = []

        def verify_restore() -> None:
            nonlocal ckpt_cpu
            run_chunk(spec.restore.sim_time_s)
            cpu_start = time.process_time()
            ours = capture_shard(
                fleet,
                prior,
                shard=k,
                num_shards=num_shards,
                round_index=spec.restore.round_index,
                sim_time_s=spec.restore.sim_time_s,
                n=n_requests,
            )
            ckpt_cpu += time.process_time() - cpu_start
            state["restore_verified"] = ours.digest() == spec.restore.digest()

        for order in spec.adopt_orders:
            pre_steps.append(
                (
                    float(order["at_s"]),
                    0,
                    lambda o=order: (
                        run_chunk(float(o["at_s"])),
                        adopt_sessions(o, float(o["at_s"]), record=False),
                    ),
                )
            )
        if spec.grow_to is not None and spec.first_round > spec.grow_to[1]:
            at_s = spec.grow_to[2]
            pre_steps.append(
                (
                    at_s,
                    1,
                    lambda: (
                        run_chunk(at_s),
                        donate_sessions(at_s, record=False),
                    ),
                )
            )
        if spec.restore is not None and spec.restore.sim_time_s < until:
            # Ordered after same-time adoptions/donations: the restore
            # capture that produced the digests ran after them too.
            pre_steps.append((spec.restore.sim_time_s, 2, verify_restore))
        for _, _, step in sorted(pre_steps, key=lambda p: (p[0], p[1])):
            step()

        rounds_run = 0
        drained = False

        def exchange(payload) -> list:
            """One barrier, with coordinator control orders peeled off
            the peers list: adoption orders for a lost shard's sessions
            apply here, at the barrier's sim time, before the next
            chunk runs."""
            peers = channel.exchange(payload)
            data, ctrl = split_ctrl(peers)
            for order in ctrl:
                if order.get(CTRL_KEY) == "adopt":
                    adopt_sessions(order, sim.now)
            return data

        for local_index, point in enumerate(spec.sync_points):
            round_index = spec.first_round + local_index
            if point >= until:
                break
            run_chunk(point)
            if crash_at is not None and round_index == crash_at:
                os._exit(17)
            rounds_run += 1
            migrate = None
            if spec.grow_to is not None and round_index == spec.grow_to[1]:
                migrate = donate_sessions(point)
            if cadence > 0 or migrate is not None:
                # Checkpointing on (or a migration to announce): the
                # capture rides the barrier payload next to the prior
                # delta.
                ckpt = None
                if cadence > 0 and (round_index + 1) % cadence == 0:
                    ckpt = capture(round_index, point)
                delta = None
                if prior is not None:
                    delta = prior.delta_since(sent_vv)
                    sent_vv = prior.local_version_vector()
                for peer in exchange(wrap_sync_payload(delta, ckpt, migrate)):
                    peer_delta, _peer_ckpt = unwrap_sync_payload(peer)
                    if peer_delta and prior is not None:
                        prior.merge_delta(peer_delta)
            elif prior is not None:
                delta = prior.delta_since(sent_vv)
                sent_vv = prior.local_version_vector()
                for peer in exchange(delta):
                    # Peers may wrap (a donor announcing a migration
                    # checkpoints regardless of cadence); unwrap is a
                    # pass-through for the historical bare deltas.
                    peer_delta, _peer_ckpt = unwrap_sync_payload(peer)
                    if peer_delta:
                        prior.merge_delta(peer_delta)
            else:
                exchange(None)
            if (
                spec.drain_after_round is not None
                and round_index == spec.drain_after_round
            ):
                drained = True
                break
        if not drained:
            run_chunk(until)
        if crash_at is not None and crash_at >= rounds_run:
            # Fewer barriers than the schedule assumed: crash at the
            # latest possible point instead (before the result ships).
            os._exit(17)
        if cadence > 0:
            # Final capture (at the drain point or end of run) keeps the
            # coordinator's --checkpoint-out bundle as fresh as the run.
            final_round = spec.first_round + max(rounds_run - 1, 0)
            state["final_checkpoint"] = capture(final_round, sim.now)
        state["drained"] = drained
        state["migrated_in"] = sorted(migrated_in)
        state["migrated_out"] = sorted(migrated_out)
        state["checkpoints_taken"] = taken
        state["checkpoint_cpu_s"] = ckpt_cpu
        state["last_checkpoint_round"] = last_round
        state["timing"] = {
            "cpu_run_s": cpu_run,
            "wall_run_s": time.perf_counter() - wall_start,
        }

    result = run_fleet(
        spec.app_spec.build(),
        spec.traces,
        fleet_env,
        predictor=spec.predictor,
        drain_s=spec.drain_s,
        seed=spec.seed,
        cohort_width_s=spec.cohort_width_s,
        early_k=spec.early_k,
        shared_prior=spec.shared_prior_path,
        session_route=lambda i: i in owned_set,
        expected_sessions=expected_total * share,
        run_driver=drive,
    )
    fleet, prior = state["fleet"], state["prior"]
    manager = fleet.manager
    return {
        "diagnostics": result.diagnostics,
        "outcomes_by_session": fleet.outcomes_by_session(),
        "session_indices": list(fleet.session_indices),
        "fairness_samples": fleet.fairness_samples(),
        "arrival_times": manager.arrival_times() if manager else None,
        "session_labels": (
            [str(r.index) for r in manager.admitted_records] if manager else None
        ),
        "prior_n": prior.n if prior is not None else None,
        "prior_delta": prior.delta_since() if prior is not None else None,
        "num_sessions": len(fleet.sessions),
        "timing": state["timing"],
        "drained": state.get("drained", False),
        "migrated_in": state.get("migrated_in", []),
        "migrated_out": state.get("migrated_out", []),
        "resumed_sessions": state.get("resumed_sessions", 0),
        "restore_verified": state.get("restore_verified"),
        "checkpoints_taken": state.get("checkpoints_taken", 0),
        "checkpoint_cpu_s": state.get("checkpoint_cpu_s", 0.0),
        "last_checkpoint_round": state.get("last_checkpoint_round"),
        "final_checkpoint": state.get("final_checkpoint"),
    }


#: Liveness-beacon cadence for supervised shard workers.
SHARD_HEARTBEAT_S = 0.5


def run_fleet_sharded(
    app: "ImageExplorationApp | ImageAppSpec",
    traces: Sequence[InteractionTrace],
    fleet_env: FleetEnvironment,
    num_shards: int,
    predictor: str = "kalman",
    sync_interval_s: float = 0.5,
    drain_s: float = DEFAULT_DRAIN_S,
    seed: int = 0,
    cohort_width_s: float = 5.0,
    early_k: int = 5,
    shared_prior=None,
    prior_out=None,
    timeout_s: Optional[float] = 600.0,
    supervision: Optional["SupervisionPolicy"] = _DEFAULT_SUPERVISION,
    transport: "str | Any" = "pipe",
    join_at_round: Optional[int] = None,
    partition_heal_s: float = 1.0,
) -> FleetRunResult:
    """:func:`run_fleet` partitioned across ``num_shards`` processes.

    Sessions are hash-routed to shards
    (:func:`~repro.fleet.sharding.shard_of` over the plan index); each
    worker process runs a full ``Simulator`` / fleet / shared-backend
    stack over its shard with its share of the downlink, admission cap,
    and backend budget.  With ``predictor="shared-markov"`` and
    ``sync_interval_s > 0`` the workers pause every ``sync_interval_s``
    simulated seconds at a common barrier and exchange crowd-prior
    deltas (the CRDT merge in :mod:`repro.predictors.shared`), so each
    shard sees the others' transitions with at most one interval of
    staleness.  Other predictors share no cross-session state and the
    shards run free.

    ``shared_prior`` warm-starts every shard from one prior (a path,
    or a :class:`~repro.predictors.shared.SharedTransitionPrior` to
    save into a temp file); ``prior_out`` saves the *pooled* end-of-run
    prior (warm-start plus every shard's contribution).

    With ``fleet_env.checkpoint`` set (and not inert), workers capture
    :class:`~repro.fleet.checkpoint.ShardCheckpoint` snapshots at the
    configured sync-round cadence and piggyback them on the barrier
    exchange.  The coordinator keeps the latest per shard: supervision
    respawns verify their deterministic replay against the stored
    digests, shards lost past the restart budget are re-absorbed from
    their last checkpoint (``sessions_resumed`` instead of
    ``sessions_lost``), ``drain:R`` chaos stops the run cleanly after
    round R, and the ``out_path``/``in_path`` pair drives the
    drain-then-restore lifecycle.  An inert config is bit-identical to
    no config at all (test-enforced).

    The result pools every shard: one fleet-wide summary over the
    concatenated outcome streams, Jain's index over the union of
    fairness samples, summed counter snapshots, and a
    ``diagnostics["sharding"]`` block (per-shard session counts, CPU
    timings, delta-sync stats).  **W=1 reproduces the unsharded**
    :func:`run_fleet` **bit-for-bit** apart from that extra block: the
    route keeps everything, every scale factor is exactly 1.0, and a
    chunked ``sim.run`` is event-exact — tests enforce this.

    ``transport`` selects the coordinator↔worker wire: ``"pipe"`` (the
    original ``multiprocessing.Pipe`` path, byte-identical to PR 7) or
    ``"tcp"`` (framed, acked, CRC-checked loopback sockets — see
    :mod:`repro.fleet.transport`); an already-built transport object
    passes through.  The seam contract is that a fixed-seed W=1 run
    produces a bit-identical pooled summary over either.  Network chaos
    (``partition:A-B@R``, ``netdelay``, ``dup``, ``corrupt``) requires
    ``"tcp"``; partitions are cut at the named barrier and heal after
    ``partition_heal_s`` wall seconds.

    Membership is elastic both ways.  A shard lost past its restart
    budget has its checkpointed sessions *migrated*: the consistent-hash
    ring minus the dead member routes each session to a survivor, which
    adopts it mid-run via a control order on the next barrier broadcast
    (``sessions_migrated`` in the pooled report, instead of the re-absorb
    epilogue — which remains as the fallback when no barrier is left to
    carry the order).  ``join_at_round=R`` grows the fleet instead: a
    fresh worker joins after barrier R, and every session the grown
    ring routes to it is captured, retired by its donor, and resumed by
    the joiner from its checkpointed request position.
    """
    from repro.fleet.ring import HashRing
    from repro.fleet.sharding import ShardRecovery, ShardTask, run_sharded
    from repro.fleet.transport import PipeTransport, TcpTransport
    from repro.predictors.shared import SharedTransitionPrior

    if num_shards < 1:
        raise ValueError("need at least one shard")
    if len(traces) != fleet_env.num_sessions:
        raise ValueError(
            f"{len(traces)} traces for {fleet_env.num_sessions} sessions"
        )
    app_spec = app if isinstance(app, ImageAppSpec) else ImageAppSpec.of(app)
    traces = list(traces)

    static = fleet_env.arrival is None or fleet_env.arrival.is_static
    if static:
        horizon = max(t.duration_s for t in traces)
    else:
        # Same arithmetic as SessionManager.horizon_s over the same
        # (pure-function-of-seed) global plan the workers will build.
        arrival = fleet_env.arrival
        wait_s = 0.0
        if arrival.max_concurrent is not None and arrival.patience_s > 0:
            wait_s = arrival.patience_s
        horizon = 0.0
        for plan in arrival.plan(fleet_env.num_sessions):
            span = traces[plan.index].duration_s
            if plan.dwell_s is not None:
                span = min(span, plan.dwell_s)
            horizon = max(horizon, plan.arrival_s + wait_s + span)
    until = horizon + drain_s

    chaos = fleet_env.chaos
    # An inert checkpoint config is nulled outright so every downstream
    # branch sees exactly the no-checkpoint code path (the bit-identity
    # contract is then trivially exact, not merely argued).
    checkpoint = fleet_env.checkpoint
    if checkpoint is not None and checkpoint.is_inert:
        checkpoint = None
    # Barriers exist for prior delta sync — and for worker-crash chaos,
    # which needs sync rounds both as crash anchors and as the points a
    # replacement worker can rejoin from (non-prior workers exchange
    # ``None``: a pure liveness barrier) — and for checkpoint capture
    # and graceful drain, which anchor to the same rounds.
    want_barriers = (
        (predictor == "shared-markov")
        or (chaos is not None and (chaos.has_worker_faults or chaos.has_drain))
        or (checkpoint is not None and checkpoint.captures)
        or (chaos is not None and bool(chaos.partitions))
        or join_at_round is not None
    )

    # -- transport seam -----------------------------------------------
    # Build the coordinator↔worker wire driver.  Net chaos is injected
    # *inside* the TCP driver (the pipe has no wire to fault), and link
    # cuts are anchored to barrier rounds via the before_round hook.
    if isinstance(transport, str):
        if transport == "pipe":
            transport_obj = PipeTransport()
        elif transport == "tcp":
            transport_obj = TcpTransport(
                chaos=chaos.net_spec() if chaos is not None else None
            )
        else:
            raise ValueError(f"unknown transport {transport!r}")
    else:
        transport_obj = transport
    if (
        chaos is not None
        and chaos.has_net_faults
        and transport_obj.name != "tcp"
    ):
        raise ValueError(
            "network chaos (partition/netdelay/dup/corrupt) requires "
            "--transport tcp: a pipe has no wire to fault"
        )

    if join_at_round is not None:
        if join_at_round < 0:
            raise ValueError("join_at_round must be >= 0")
        if not static:
            raise ValueError(
                "mid-run join needs a static fleet (churn fleets own "
                "their own admission schedule)"
            )

    def before_round(round_index: int) -> None:
        if chaos is None:
            return
        for lo, hi in chaos.partitions_at(round_index):
            transport_obj.cut_links(range(lo, hi + 1), partition_heal_s)
    sync_points: tuple[float, ...] = ()
    if want_barriers and sync_interval_s > 0:
        sync_points = tuple(
            i * sync_interval_s
            for i in range(1, math.ceil(until / sync_interval_s))
            if i * sync_interval_s < until
        )

    # Graceful drain (``drain:R`` chaos): truncate the schedule after
    # round R — workers complete that barrier (capture + exchange), skip
    # the rest of the run, and ship partial results; --checkpoint-out
    # then persists the fleet's state as of the drain round.
    drained_at_round: Optional[int] = None
    if chaos is not None and chaos.has_drain and sync_points:
        drained_at_round = min(chaos.drain_round, len(sync_points) - 1)
        sync_points = sync_points[: drained_at_round + 1]

    # Mid-run join: after barrier ``join_at_round`` a new member (shard
    # index W, ring membership W+1) enters.  Every original worker gets
    # the same ``grow_to`` marker and donates, at that barrier, the
    # owned sessions the grown ring routes to the newcomer.
    grow_to: Optional[tuple[int, int, float]] = None
    if join_at_round is not None:
        if join_at_round >= len(sync_points):
            raise ValueError(
                f"join_at_round={join_at_round} needs at least "
                f"{join_at_round + 1} sync rounds, run has {len(sync_points)}"
            )
        grow_to = (num_shards + 1, join_at_round, sync_points[join_at_round])

    # Per-worker capture cadence: path-only configs capture every round
    # so the written bundle is as fresh as the run.
    worker_cadence = 0
    if checkpoint is not None and checkpoint.captures:
        worker_cadence = max(checkpoint.cadence_rounds, 1)

    # --checkpoint-in: validate the bundle up front (fail-fast, before
    # any worker spawns) and remember the path for the workers.
    resume_path: Optional[str] = None
    resume_bundle = None
    if checkpoint is not None and checkpoint.in_path is not None:
        resume_path = os.fspath(checkpoint.in_path)
        resume_bundle = FleetCheckpoint.load(
            resume_path, n=app_spec.rows * app_spec.cols
        )
        if resume_bundle.num_shards != num_shards:
            raise ValueError(
                f"checkpoint taken with {resume_bundle.num_shards} shards, "
                f"cannot resume with {num_shards}"
            )

    warm_path = shared_prior
    temp_files: list[str] = []
    if isinstance(shared_prior, SharedTransitionPrior):
        temp_prior = tempfile.NamedTemporaryFile(suffix=".npz", delete=False)
        temp_prior.close()
        shared_prior.save(temp_prior.name)
        warm_path = temp_prior.name
        temp_files.append(temp_prior.name)

    heartbeat_s = SHARD_HEARTBEAT_S if supervision is not None else None

    def make_task(
        k: int,
        task_sync_points: tuple[float, ...],
        attempt: int,
        first_round: int = 0,
    ) -> ShardTask:
        return ShardTask(
            entry="repro.experiments.runner:_sharded_fleet_worker",
            spec=ShardFleetSpec(
                app_spec=app_spec,
                traces=traces,
                fleet_env=fleet_env,
                predictor=predictor,
                shard=k,
                num_shards=num_shards,
                sync_points=task_sync_points,
                drain_s=drain_s,
                seed=seed,
                cohort_width_s=cohort_width_s,
                early_k=early_k,
                shared_prior_path=(
                    os.fspath(warm_path) if warm_path is not None else None
                ),
                attempt=attempt,
                checkpoint_cadence=worker_cadence,
                first_round=first_round,
                resume_from=resume_path,
                drain_after_round=drained_at_round,
                grow_to=grow_to,
            ),
            shard=k,
            num_shards=num_shards,
            heartbeat_interval_s=heartbeat_s,
        )

    # Coordinator-side merged prior: every barrier's deltas fold into
    # this aggregate, so at any moment it holds the crowd's state as of
    # the last completed sync round — exactly the seed a replacement
    # worker needs to rejoin without coordination (the CRDT merge is
    # idempotent, so the worker re-contributing its pre-crash
    # transitions is harmless).
    coord_state: dict = {"prior": None, "merged": 0}
    store = CheckpointStore() if checkpoint is not None else None

    # Elastic-membership bookkeeping.  ``join_state["moved"]`` collects
    # the SessionCheckpoint payloads donors ship at the join barrier;
    # ``pending_ctrl`` holds adoption orders for lost shards' sessions
    # until the next ``peers`` broadcast carries them; ``adoption_log``
    # tracks, per lost shard, whether every order actually reached a
    # live survivor (undelivered ⇒ the legacy re-absorb fallback runs).
    join_state: dict = {"moved": {}, "joined": False, "route": (), "traces": None}
    pending_ctrl: dict[int, list[dict]] = {}
    adopt_orders_by_target: dict[int, list[dict]] = {}
    adoption_log: dict[int, dict] = {}

    def ensure_coord_prior(n: int) -> "SharedTransitionPrior":
        if coord_state["prior"] is None:
            coord_state["prior"] = (
                SharedTransitionPrior.load(warm_path, n=n)
                if warm_path is not None
                else SharedTransitionPrior(n)
            )
        return coord_state["prior"]

    # Resuming: pre-seed the coordinator aggregate with every shard's
    # stored contribution, so a worker that dies *before* its first
    # post-resume barrier still respawns with the checkpointed crowd.
    if resume_bundle is not None:
        for ckpt in resume_bundle.shards.values():
            delta = ckpt.prior_delta_object()
            if delta is not None:
                coord_state["merged"] += ensure_coord_prior(delta.n).merge_delta(
                    delta
                )

    def on_round(round_index: int, offers: list) -> None:
        for offer in offers:
            delta, ckpt = unwrap_sync_payload(offer)
            if ckpt is not None and store is not None:
                store.put(ckpt)
            order = migrate_out_of(offer)
            if order is not None:
                # A donor announcing sessions bound for the joiner:
                # remember each session's checkpointed position so the
                # joiner's suffix traces resume exactly there.
                for sc in order.get("sessions", ()):
                    join_state["moved"][int(sc["index"])] = dict(sc)
            if not delta:
                continue  # empty delta, or a non-prior liveness barrier
            coord_state["merged"] += ensure_coord_prior(delta.n).merge_delta(
                delta
            )

    # One extra slot so a mid-run joiner (shard index ``num_shards``)
    # has a restart-attempt counter like everyone else.
    attempts = [0] * (num_shards + 1)

    def seed_prior_path() -> Optional[str]:
        """Save the coordinator aggregate for a worker to warm from."""
        prior = coord_state["prior"]
        if prior is None:
            return warm_path if warm_path is None else os.fspath(warm_path)
        handle = tempfile.NamedTemporaryFile(suffix=".npz", delete=False)
        handle.close()
        prior.save(handle.name)
        temp_files.append(handle.name)
        return handle.name

    def _joinerize(task: ShardTask) -> ShardTask:
        """Rewrite ``task`` into the joiner's identity: it routes by an
        explicit session set (the ring's newcomer slice), sees the
        grown membership, and never donates or restores-by-bundle."""
        task.spec.route_indices = join_state["route"]
        task.spec.traces = join_state["traces"]
        task.spec.num_shards = num_shards + 1
        task.spec.grow_to = None
        task.spec.resume_from = None
        task.num_shards = num_shards + 1
        return task

    def make_joiner(round_index: int) -> Optional[ShardTask]:
        """Build the worker that joins after barrier ``round_index``.

        Its sessions are exactly those the donors shipped at this
        barrier; each runs the suffix of its global trace past its
        checkpointed request count, so the newcomer resumes the
        sessions mid-flight rather than replaying them from scratch.
        It warms from the coordinator's aggregate prior — the crowd's
        state as of the join barrier.
        """
        moved = join_state["moved"]
        at_s = sync_points[round_index]
        route = tuple(sorted(moved))
        joiner_traces = list(traces)
        for idx in route:
            suffix = _suffix_trace(
                traces[idx], int(moved[idx]["requests_seen"]), at_s
            )
            if suffix is not None:
                joiner_traces[idx] = suffix
        join_state.update(
            joined=True, route=route, traces=tuple(joiner_traces)
        )
        seed_path = seed_prior_path()
        task = _joinerize(
            make_task(
                num_shards,
                sync_points[round_index + 1 :],
                0,
                first_round=round_index + 1,
            )
        )
        if seed_path is not None:
            task.spec.shared_prior_path = os.fspath(seed_path)
        return task

    def respawn(shard: int, next_round: int) -> ShardTask:
        attempts[shard] += 1
        seed_path = seed_prior_path()
        task = make_task(
            shard, sync_points[next_round:], attempts[shard], first_round=next_round
        )
        if shard == num_shards and join_state["joined"]:
            task = _joinerize(task)
        orders = adopt_orders_by_target.get(shard)
        if orders:
            # The predecessor adopted a lost shard's sessions; its
            # replacement must re-adopt them (as a deterministic
            # pre-step) or they would silently vanish with the restart.
            task.spec.adopt_orders = tuple(orders)
        if seed_path is not None:
            task.spec.shared_prior_path = os.fspath(seed_path)
        if store is not None:
            latest = store.latest(shard)
            if latest is not None:
                task.spec.restore = latest
        return task

    recovery = ShardRecovery()
    reabsorbed: list[int] = []

    def on_lost(lost_shard: int, next_round: int) -> None:
        """Plan adoption of a shard lost past its restart budget.

        The dead shard's last checkpoint is split by a consistent-hash
        ring over the surviving membership — consistent hashing keeps
        every survivor's own sessions where they are; only the dead
        member's ranges reassign — and each survivor receives, in the
        very next ``peers`` broadcast, an adoption order for the
        sessions the shrunken ring routes to it.  Shards that cannot be
        migrated (no checkpoint, no barrier left to carry the orders,
        churn fleets, drain runs) fall through to the legacy re-absorb
        epilogue.
        """
        if store is None or not static or drained_at_round is not None:
            return
        if next_round >= len(sync_points):
            return  # no broadcast left to carry the orders
        latest = store.latest(lost_shard)
        if latest is None:
            return
        ring = HashRing(range(num_shards))
        if join_state["joined"]:
            ring.add(num_shards)
        for dead in set(recovery.lost_shards):
            if dead in ring:
                ring.remove(dead)
        if len(ring) == 0:
            return
        at_s = sync_points[next_round]
        moved_away = set(join_state["moved"])
        assign: dict[int, list[int]] = {}
        for sc in latest.sessions:
            if sc.index in moved_away:
                continue  # already donated to the joiner pre-crash
            assign.setdefault(ring.route(sc.index), []).append(sc.index)
        payload = latest.to_payload()
        planned = 0
        for target, indices in sorted(assign.items()):
            pending_ctrl.setdefault(target, []).append(
                {
                    CTRL_KEY: "adopt",
                    "from_shard": lost_shard,
                    "checkpoint": payload,
                    "indices": indices,
                    "at_s": at_s,
                }
            )
            planned += 1
        if planned:
            adoption_log[lost_shard] = {"orders": planned, "delivered": 0}

    def control(round_index: int, shard: int) -> list:
        orders = pending_ctrl.pop(shard, [])
        for order in orders:
            adoption_log[order["from_shard"]]["delivered"] += 1
            # Remember what this worker adopted: its own replacement,
            # should it later crash, must re-adopt as a pre-step.
            adopt_orders_by_target.setdefault(shard, []).append(order)
        return orders

    try:
        tasks = [make_task(k, sync_points, 0) for k in range(num_shards)]
        shards = run_sharded(
            tasks,
            sync_rounds=len(sync_points),
            timeout_s=timeout_s,
            on_round=on_round,
            supervision=supervision,
            respawn=respawn if supervision is not None else None,
            recovery=recovery,
            transport=transport_obj,
            before_round=before_round,
            on_lost=on_lost if supervision is not None else None,
            control=control if supervision is not None else None,
            join_at_round=join_at_round,
            make_joiner=make_joiner if join_at_round is not None else None,
        )

        # Re-absorb shards lost past the restart budget: with
        # checkpointing on, the coordinator holds each lost shard's last
        # checkpoint and crowd state, so its slice can run to completion
        # as a barrier-free single task (the first step toward elastic
        # resharding).  The per-origin CRDT merge dedups its prior
        # contribution against everything already pooled.  Drain runs
        # skip this: the written bundle keeps the lost shard's last
        # checkpoint for the --checkpoint-in restart instead.
        migrated_shards = {
            k for k, v in adoption_log.items() if v["delivered"] > 0
        }
        if store is not None and drained_at_round is None:
            for k in recovery.lost_shards:
                if k in migrated_shards:
                    # Survivors adopted this shard's sessions mid-run;
                    # re-running its slice would double-serve them.
                    continue
                seed_path = seed_prior_path()
                salvage = make_task(
                    k, (), attempts[k] + 1, first_round=len(sync_points)
                )
                if seed_path is not None:
                    salvage.spec.shared_prior_path = os.fspath(seed_path)
                latest = store.latest(k)
                if latest is not None:
                    salvage.spec.restore = latest
                salvage_task = ShardTask(
                    entry=salvage.entry,
                    spec=salvage.spec,
                    shard=0,
                    num_shards=1,
                    heartbeat_interval_s=heartbeat_s,
                )
                try:
                    shards[k] = run_sharded(
                        [salvage_task], sync_rounds=0, timeout_s=timeout_s
                    )[0]
                except Exception:
                    continue  # still lost; the pooled report says so
                reabsorbed.append(k)

        pooled_prior = None
        transitions_merged = coord_state["merged"]
        if predictor == "shared-markov":
            prior_ns = [
                s["prior_n"]
                for s in shards
                if s is not None and s["prior_n"] is not None
            ]
            if prior_ns:
                pooled_prior = coord_state["prior"]
                if pooled_prior is None:
                    pooled_prior = (
                        SharedTransitionPrior.load(warm_path, n=prior_ns[0])
                        if warm_path is not None
                        else SharedTransitionPrior(prior_ns[0])
                    )
                for s in shards:
                    if s is not None and s["prior_delta"] is not None:
                        transitions_merged += pooled_prior.merge_delta(
                            s["prior_delta"]
                        )
    finally:
        # Idempotent: run_sharded's teardown already closed it on the
        # happy path; this covers validation failures before spawn.
        transport_obj.close()
        for path in temp_files:
            try:
                os.unlink(path)
            except OSError:
                pass

    def _owned_now(k: int) -> list[int]:
        """Sessions shard ``k`` is responsible for at end of run: its
        hash slice, minus anything donated to a mid-run joiner — or,
        for the joiner itself, exactly the adopted set."""
        if join_state["joined"] and k == num_shards:
            return list(join_state["route"])
        owned = _shard_owned(len(traces), k, num_shards)
        if join_state["joined"]:
            owned = [i for i in owned if i not in join_state["moved"]]
        return owned

    lost_shard_list = [k for k in recovery.lost_shards if k not in reabsorbed]
    # Sessions on a migrated shard live on in their adopters; only the
    # indices in orders that never reached a live survivor are lost.
    undelivered: dict[int, int] = {}
    for orders in pending_ctrl.values():
        for order in orders:
            undelivered[order["from_shard"]] = undelivered.get(
                order["from_shard"], 0
            ) + len(order["indices"])
    lost_sessions = sum(
        undelivered.get(k, 0) if k in migrated_shards else len(_owned_now(k))
        for k in lost_shard_list
    )
    sessions_migrated = sum(
        len(s["migrated_in"]) for s in shards if s is not None
    )
    if join_state["joined"]:
        sessions_migrated += len(join_state["route"])

    # --checkpoint-out: fold every surviving worker's final capture in
    # (fresher than the last barrier's) and persist the bundle.
    drained = any(s is not None and s.get("drained") for s in shards)
    if store is not None:
        for s in shards:
            if s is not None and s.get("final_checkpoint") is not None:
                store.put(s["final_checkpoint"])
    if checkpoint is not None and checkpoint.out_path is not None:
        store.bundle(
            n=app_spec.rows * app_spec.cols,
            num_shards=num_shards,
            sync_interval_s=sync_interval_s,
            drained_at_round=drained_at_round if drained else None,
        ).save(os.fspath(checkpoint.out_path))

    # Resumed sessions, by provenance: restored from a --checkpoint-in
    # bundle, restored in place by supervision's respawn, or re-absorbed
    # from a lost shard's last checkpoint.
    sessions_resumed = 0
    if checkpoint is not None:
        sessions_resumed += sum(
            s["resumed_sessions"] for s in shards if s is not None
        )
        sessions_resumed += sum(
            len(_owned_now(k)) for k in recovery.recovered_shards
        )
        sessions_resumed += sum(len(_owned_now(k)) for k in reabsorbed)

    shards = [s for s in shards if s is not None]

    # -- pool the shards into one fleet-wide result -------------------
    reports = [s["diagnostics"] for s in shards]
    outcomes_by_session = [o for s in shards for o in s["outcomes_by_session"]]
    session_indices = [i for s in shards for i in s["session_indices"]]
    samples = [v for s in shards for v in s["fairness_samples"]]
    dup_sessions = 0
    if join_state["joined"]:
        # A migrated session appears twice — the donor's served prefix
        # and the joiner's suffix.  Results pool in shard order (donors
        # before the joiner), so folding later occurrences into the
        # first stitches prefix + suffix back into one logical session.
        first_at: dict[int, int] = {}
        merged_indices: list[int] = []
        merged_outcomes: list[list] = []
        for idx, outs in zip(session_indices, outcomes_by_session):
            if idx in first_at:
                merged_outcomes[first_at[idx]] = (
                    merged_outcomes[first_at[idx]] + outs
                )
                dup_sessions += 1
            else:
                first_at[idx] = len(merged_indices)
                merged_indices.append(idx)
                merged_outcomes.append(outs)
        session_indices = merged_indices
        outcomes_by_session = merged_outcomes
    diagnostics: dict = {
        "sessions": sum(d["sessions"] for d in reports) - dup_sessions,
        "blocks_sent": sum(d["blocks_sent"] for d in reports),
        "bytes_sent": sum(d["bytes_sent"] for d in reports),
        "blocks_deferred": sum(d["blocks_deferred"] for d in reports),
        "link_fairness": jain_fairness(samples) if samples else 1.0,
        "backend": pool_snapshots([d["backend"] for d in reports]),
    }
    backend = diagnostics["backend"]
    shared_hits = backend["cache_hits"] + backend["piggybacked"]
    calls = backend["fetches_started"] + shared_hits
    diagnostics["shared_hit_rate"] = shared_hits / calls if calls else 0.0
    if all("prediction" in d for d in reports):
        diagnostics["prediction"] = pool_snapshots(
            [d["prediction"] for d in reports]
        )
    if all("chaos" in d for d in reports):
        diagnostics["chaos"] = pool_snapshots([d["chaos"] for d in reports])
    if not static:
        diagnostics["churn"] = pool_snapshots([d["churn"] for d in reports])
        rates = [
            early_hit_rate(o, first_k=early_k) for o in outcomes_by_session if o
        ]
        diagnostics["early_hit_rate"] = sum(rates) / len(rates) if rates else 0.0

    if pooled_prior is not None:
        diagnostics["shared_prior"] = pooled_prior.snapshot()
        if prior_out is not None:
            pooled_prior.save(prior_out)

    diagnostics["sharding"] = {
        "shards": num_shards,
        "sync_interval_s": sync_interval_s,
        "sync_rounds": len(sync_points),
        "sessions_per_shard": [s["num_sessions"] for s in shards],
        "transitions_merged": transitions_merged,
        "cpu_run_s": [s["timing"]["cpu_run_s"] for s in shards],
        "wall_run_s": [s["timing"]["wall_run_s"] for s in shards],
        # Supervision outcome: how many shards died and came back, how
        # many were dropped past the restart budget (after any
        # checkpoint re-absorption), and how many planned sessions that
        # loss cost the pooled report.
        "shards_recovered": len(recovery.recovered_shards),
        "shards_lost": len(lost_shard_list),
        "sessions_lost": lost_sessions,
        "restarts": len(recovery.restarts),
        "restarts_by_shard": [
            sum(1 for s, _, _ in recovery.restarts if s == k)
            for k in range(
                num_shards + (1 if join_state["joined"] else 0)
            )
        ],
        # Elastic membership: sessions carried to a new owner mid-run
        # (adopted from a lost shard, or donated to a mid-run joiner).
        "sessions_migrated": sessions_migrated,
        "shards_migrated": len(migrated_shards),
        "members": num_shards + (1 if join_state["joined"] else 0),
    }
    if join_state["joined"]:
        diagnostics["sharding"]["joined_at_round"] = join_at_round
    per_shard_counters = transport_obj.counter_snapshots()
    diagnostics["sharding"]["transport"] = {
        "driver": transport_obj.name,
        "per_shard": per_shard_counters,
        "totals": pool_transport_counters(per_shard_counters.values()),
    }
    if checkpoint is not None:
        final_round = len(sync_points) - 1
        verdicts = [
            s["restore_verified"]
            for s in shards
            if s["restore_verified"] is not None
        ]
        diagnostics["sharding"].update(
            {
                "checkpoints_taken": sum(s["checkpoints_taken"] for s in shards),
                "checkpoint_cpu_s": [s["checkpoint_cpu_s"] for s in shards],
                "last_checkpoint_round": store.last_rounds(num_shards),
                "checkpoint_age_rounds": store.ages(num_shards, final_round),
                "sessions_resumed": sessions_resumed,
                "shards_reabsorbed": len(reabsorbed),
                # True when every restored shard's replay reproduced its
                # checkpoint digests; None when nothing was restored.
                "restore_verified": (all(verdicts) if verdicts else None),
            }
        )
        if drained:
            diagnostics["sharding"]["drained_at_round"] = drained_at_round

    cohorts: list[CohortSummary] = []
    session_labels = None
    if not static:
        arrival_times = [t for s in shards for t in s["arrival_times"]]
        cohorts = collect_cohorts(
            outcomes_by_session, arrival_times, cohort_width_s=cohort_width_s
        )
        session_labels = [l for s in shards for l in s["session_labels"]]
    elif num_shards > 1:
        # Positions no longer equal plan indices once the fleet is
        # split; label rows with the global index so they stay joinable.
        session_labels = [str(i) for i in session_indices]

    return FleetRunResult(
        system=f"fleet-{predictor}",
        fleet_env=fleet_env,
        summary=(
            collect_fleet(outcomes_by_session)
            if any(outcomes_by_session)
            else None
        ),
        diagnostics=diagnostics,
        trace_names=[t.name for t in traces],
        cohorts=cohorts,
        session_labels=session_labels,
    )


def run_classic(
    app: ImageExplorationApp,
    trace: InteractionTrace,
    env: EnvironmentConfig,
    variant: str = "full",
    acc: Optional[tuple[float, int]] = None,
    seed: int = 0,
) -> RunResult:
    """Replay ``trace`` against a request-response system.

    ``variant="full"`` is the paper's Baseline, ``"first_block"`` its
    Progressive arm.  ``acc=(accuracy, horizon)`` attaches the
    idealized ACC prefetcher (always over full responses, as in §6.1).
    """
    sim = Simulator()
    downlink = make_downlink(sim, env, seed=seed)
    uplink = make_uplink(sim, env)
    backend = app.make_backend(sim, fetch_delay_s=env.backend_delay_s)
    session = ClassicSession(
        sim=sim,
        backend=backend,
        utility=app.utility,
        num_blocks_of=lambda r: app.encoder.num_blocks(r),
        downlink=downlink,
        uplink=uplink,
        config=ClassicConfig(cache_bytes=env.cache_bytes, variant=variant),
    )
    prefetcher = None
    on_position = None
    if acc is not None:
        accuracy, horizon = acc
        request_ids = [e.request for e in trace.requests()]
        prefetcher = ACCPrefetcher(
            session=session,
            future_requests=request_ids,
            accuracy=accuracy,
            horizon=horizon,
            outstanding_limit=acc_threshold(
                env.bandwidth_bytes_per_s, app.mean_response_bytes()
            ),
            num_requests=app.num_requests,
            seed=seed,
        )
        on_position = prefetcher.on_user_request

    _replay(
        sim,
        trace,
        observe=lambda event: None,  # classic systems ignore mouse moves
        request=session.request,
        on_request_position=on_position,
    )
    # Classic sessions have no periodic tasks: run to quiescence so
    # queued responses drain and true (possibly huge) latencies are
    # measured rather than truncated.
    sim.run()
    session.finalize()

    if acc is not None:
        name = f"acc-{acc[0]:g}-{acc[1]}"
    elif variant == "first_block":
        name = "progressive"
    else:
        name = "baseline"
    outcomes = session.outcomes
    responses = max(1, session.responses_received)
    return RunResult(
        system=name,
        trace_name=trace.name,
        env=env,
        summary=collect(outcomes),
        outcomes=outcomes,
        blocks_pushed=session.responses_received,
        bytes_pushed=session.bytes_received,
        overpush=session.unused_prefetches / responses if acc is not None else None,
        extras={
            "prefetches_sent": session.prefetches_sent,
            "prefetches_suppressed": (
                prefetcher.prefetches_suppressed if prefetcher else 0
            ),
            "backend": backend.stats.snapshot(),
        },
    )


def run_falcon(
    app: FalconApp,
    trace: "FalconTrace",
    env: EnvironmentConfig,
    predictor: str = "kalman",
    backend_kind: str = "postgres",
    db_scale: str = "small",
    drain_s: float = DEFAULT_DRAIN_S,
    seed: int = 0,
    cache_responses: int = 0,
) -> RunResult:
    """Khameleon over the ported Falcon application (§6.4, Fig. 14).

    ``backend_kind`` selects the PostgreSQL-like engine (15-query
    concurrency limit + §5.4 throttle) or the ScalableSQL simulation.
    ``cache_responses`` sizes the client ring buffer in responses
    (default: one full response per chart).

    Selection commits in the trace invalidate every cached slice: the
    backend's response cache and the client block cache immediately
    (both are client/app knowledge), and the server's scheduler mirror
    one uplink latency later (when the server learns).
    """
    if backend_kind not in ("postgres", "scalable"):
        raise ValueError(f"unknown backend {backend_kind!r}")
    sim = Simulator()
    downlink = make_downlink(sim, env, seed=seed)
    uplink = make_uplink(sim, env)
    db = app.make_db(sim, scale=db_scale, scalable=backend_kind == "scalable", seed=seed)
    backend = app.make_backend(sim, db)

    block_bytes = app.nominal_block_bytes()
    responses = cache_responses if cache_responses > 0 else app.num_requests
    cache_blocks = responses * app.blocks_per_response
    config = SessionConfig(
        cache_bytes=cache_blocks * block_bytes,
        block_bytes=block_bytes,
        scheduler_seed=seed,
        initial_bandwidth_bytes_per_s=env.bandwidth_bytes_per_s,
        backend_concurrency=(
            app.max_concurrent_requests if backend_kind == "postgres" else None
        ),
    )
    session = KhameleonSession(
        sim=sim,
        backend=backend,
        predictor=app.make_predictor(predictor, trace=trace.interaction),
        utility=app.utility,
        num_blocks=app.num_blocks,
        downlink=downlink,
        uplink=uplink,
        config=config,
    )
    _replay(sim, trace.interaction, session.client.observe, session.client.request)

    def commit_selection(event) -> None:
        app.apply_selection(event)  # also clears the backend response cache
        session.cache.clear()
        # The server's mirror learns after one uplink hop.
        uplink.send(lambda _payload: session.mirror.clear())

    for sel in trace.selections:
        sim.schedule_at(sel.time_s, commit_selection, sel)

    session.start()
    sim.run(until=trace.duration_s + drain_s)
    session.stop()

    outcomes = session.cache_manager.outcomes
    return RunResult(
        system=f"khameleon-{predictor}-{backend_kind}",
        trace_name=trace.name,
        env=env,
        summary=collect(outcomes),
        outcomes=outcomes,
        blocks_pushed=session.sender.blocks_sent,
        bytes_pushed=session.sender.bytes_sent,
        overpush=overpush_rate(session.sender.blocks_sent, outcomes),
        extras={
            "queries_executed": db.queries_executed,
            "peak_db_concurrency": getattr(db, "peak_concurrency", None),
            "blocks_deferred": session.sender.blocks_deferred,
        },
    )


def extend_with_pause(
    trace: InteractionTrace, pause_s: float, hold_s: float, sample_rate_hz: float = 20.0
) -> InteractionTrace:
    """Truncate at ``pause_s`` and hold the mouse still for ``hold_s``.

    The Fig. 10 protocol: the user stops on a request.  Stationary
    samples keep anytime predictors honest (a Kalman filter fed no
    events would extrapolate the last velocity off the interface).
    """
    if hold_s <= 0:
        raise ValueError("hold duration must be positive")
    base = trace.truncated(pause_s)
    x, y = base.events[-1].x, base.events[-1].y
    t = base.events[-1].time_s
    dt = 1.0 / sample_rate_hz
    events = list(base.events)
    while t + dt <= pause_s + hold_s:
        t += dt
        events.append(TraceEvent(t, x, y))
    return InteractionTrace(events, name=f"{trace.name}|pause@{pause_s:g}s")


def run_convergence(
    app: ImageExplorationApp,
    trace: InteractionTrace,
    env: EnvironmentConfig,
    system: str,
    pause_s: float,
    hold_s: float = 10.0,
    sample_points: Sequence[float] = (),
    seed: int = 0,
) -> list[tuple[float, float]]:
    """Utility-vs-elapsed-time after a pause (Fig. 10).

    Returns ``(elapsed_s, utility)`` samples for the request the user
    paused on, measured from its registration.
    """
    paused = extend_with_pause(trace, pause_s, hold_s)
    result = run_image_system(system, app, paused, env, drain_s=hold_s, seed=seed)
    served = [o for o in result.outcomes if o.served or not o.preempted]
    if not served:
        return [(p, 0.0) for p in sample_points]
    final = max(served, key=lambda o: o.logical_ts)
    points = sample_points or [0.05 * (1.35**i) for i in range(24)]
    return convergence_curve(final, horizon_s=hold_s, points=points)


def run_image_system(
    system: str,
    app: ImageExplorationApp,
    trace: InteractionTrace,
    env: EnvironmentConfig,
    drain_s: float = DEFAULT_DRAIN_S,
    seed: int = 0,
) -> RunResult:
    """Dispatch a system name from the figures to the right driver.

    Names: ``khameleon``, ``khameleon-oracle``, ``khameleon-uniform``,
    ``predictor`` (no progressive encoding), ``progressive`` (no
    prefetch), ``baseline``, and ``acc-<acc>-<hor>``.
    """
    if system == "khameleon":
        return run_khameleon(app, trace, env, predictor="kalman", drain_s=drain_s, seed=seed)
    if system == "khameleon-oracle":
        return run_khameleon(app, trace, env, predictor="oracle", drain_s=drain_s, seed=seed)
    if system == "khameleon-uniform":
        return run_khameleon(app, trace, env, predictor="uniform", drain_s=drain_s, seed=seed)
    if system == "predictor":
        return run_khameleon(
            app, trace, env, predictor="kalman", progressive=False, drain_s=drain_s, seed=seed
        )
    if system == "baseline":
        return run_classic(app, trace, env, variant="full", seed=seed)
    if system == "progressive":
        return run_classic(app, trace, env, variant="first_block", seed=seed)
    if system.startswith("acc-"):
        parts = system.split("-")
        if len(parts) != 3:
            raise ValueError(f"bad ACC spec {system!r} (want acc-<acc>-<hor>)")
        accuracy, horizon = float(parts[1]), int(parts[2])
        return run_classic(app, trace, env, variant="full", acc=(accuracy, horizon), seed=seed)
    raise ValueError(f"unknown system {system!r}")

"""End-to-end experiment drivers (§6).

Each driver assembles one *system under test* over the shared simulated
substrate, replays an interaction trace against it, and returns a
:class:`RunResult` with the §6.1 metrics:

* :func:`run_khameleon` — the full Khameleon stack over the image
  application's file-system backend (optionally without progressive
  encoding: the Fig. 11 "Predictor" ablation arm).
* :func:`run_classic` — the request-response architectures: Baseline,
  Progressive (first block only), and the ACC-<acc>-<hor> idealized
  prefetchers.
* :func:`run_falcon` — Khameleon over the Falcon port with the
  PostgreSQL-like or ScalableSQL backend (§6.4).
* :func:`run_convergence` — the Fig. 10 protocol: pause the trace and
  track utility upcalls until quality converges.
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field
from typing import Any, Optional, Sequence

from repro.baselines.acc import ACCPrefetcher, acc_threshold
from repro.baselines.classic import ClassicConfig, ClassicSession
from repro.core.cache_manager import RequestOutcome
from repro.core.session import KhameleonSession, SessionConfig
from repro.encoding.naive import SingleBlockEncoder
from repro.backends.filesystem import FileSystemBackend
from repro.fleet import KhameleonFleet
from repro.metrics.collector import MetricSummary, collect, convergence_curve, overpush_rate
from repro.metrics.fleet import (
    CohortSummary,
    FleetSummary,
    collect_cohorts,
    early_hit_rate,
)
from repro.predictors.base import MouseEvent
from repro.sim.engine import Simulator
from repro.workloads.falcon import FalconApp, FalconTrace
from repro.workloads.image_app import ImageExplorationApp
from repro.workloads.trace import InteractionTrace, TraceEvent

from .configs import (
    EnvironmentConfig,
    FleetEnvironment,
    make_downlink,
    make_shared_downlink,
    make_uplink,
)

__all__ = [
    "RunResult",
    "FleetRunResult",
    "run_khameleon",
    "run_classic",
    "run_falcon",
    "run_fleet",
    "run_convergence",
    "run_image_system",
    "extend_with_pause",
]

#: Simulated seconds to keep running after the trace ends, so in-flight
#: blocks land and late upcalls fire (Khameleon pushes forever; classic
#: sessions instead drain their event queue completely).
DEFAULT_DRAIN_S = 3.0


@dataclass
class RunResult:
    """Everything a figure needs from one (system, trace, env) run."""

    system: str
    trace_name: str
    env: EnvironmentConfig
    summary: MetricSummary
    outcomes: list[RequestOutcome]
    blocks_pushed: int = 0
    bytes_pushed: int = 0
    overpush: Optional[float] = None
    extras: dict = field(default_factory=dict)

    def row(self, **extra_columns: Any) -> dict:
        """Flatten into a report row (figure drivers add sweep columns)."""
        row = {"system": self.system, **extra_columns, **self.summary.as_dict()}
        if self.overpush is not None:
            row["overpush_%"] = 100.0 * self.overpush
        return row


def _replay(
    sim: Simulator,
    trace: InteractionTrace,
    observe,
    request,
    on_request_position=None,
    offset_s: float = 0.0,
) -> None:
    """Schedule the trace's events into the simulator.

    ``observe(event)`` fires for every sample; ``request(id)`` for
    request-bearing samples; ``on_request_position(i)`` (optional)
    additionally reports the request's ordinal position — the hook the
    ACC prefetchers use to read the future.  ``offset_s`` shifts the
    whole trace (a churn fleet replays each user's trace from the
    moment they arrive, not from t = 0).
    """
    position = 0
    for event in trace.events:
        sim.schedule_at(offset_s + event.time_s, observe, MouseEvent(event.x, event.y))
        if event.request is not None:
            sim.schedule_at(offset_s + event.time_s, request, event.request)
            if on_request_position is not None:
                sim.schedule_at(offset_s + event.time_s, on_request_position, position)
            position += 1


def run_khameleon(
    app: ImageExplorationApp,
    trace: InteractionTrace,
    env: EnvironmentConfig,
    predictor: str = "kalman",
    progressive: bool = True,
    drain_s: float = DEFAULT_DRAIN_S,
    prediction_interval_s: float = 0.150,
    seed: int = 0,
    gamma: float = 1.0,
) -> RunResult:
    """Replay ``trace`` against a full Khameleon session.

    ``progressive=False`` swaps the app's progressive encoder for a
    single-block one (whole responses pushed speculatively — the
    Fig. 11 "Predictor" arm); the nominal block size then becomes the
    mean response size so cache and slot accounting stay consistent.
    """
    sim = Simulator()
    downlink = make_downlink(sim, env, seed=seed)
    uplink = make_uplink(sim, env)

    if progressive:
        backend = app.make_backend(sim, fetch_delay_s=env.backend_delay_s)
        num_blocks = app.num_blocks
        block_bytes = app.block_bytes
    else:
        encoder = SingleBlockEncoder(app.response_bytes)
        backend = FileSystemBackend(sim, encoder, fetch_delay_s=env.backend_delay_s)
        num_blocks = [1] * app.num_requests
        block_bytes = int(app.mean_response_bytes())

    config = SessionConfig(
        cache_bytes=env.cache_bytes,
        block_bytes=block_bytes,
        prediction_interval_s=prediction_interval_s,
        scheduler_seed=seed,
        gamma=gamma,
        initial_bandwidth_bytes_per_s=env.bandwidth_bytes_per_s,
    )
    session = KhameleonSession(
        sim=sim,
        backend=backend,
        predictor=app.make_predictor(predictor, trace=trace),
        utility=app.utility,
        num_blocks=num_blocks,
        downlink=downlink,
        uplink=uplink,
        config=config,
    )
    _replay(sim, trace, session.client.observe, session.client.request)
    session.start()
    sim.run(until=trace.duration_s + drain_s)
    session.stop()

    outcomes = session.cache_manager.outcomes
    name = "khameleon" if progressive else "predictor"
    if predictor != "kalman":
        name = f"khameleon-{predictor}"
    if not progressive and predictor != "kalman":
        name = f"predictor-{predictor}"
    return RunResult(
        system=name,
        trace_name=trace.name,
        env=env,
        summary=collect(outcomes),
        outcomes=outcomes,
        blocks_pushed=session.sender.blocks_sent,
        bytes_pushed=session.sender.bytes_sent,
        overpush=overpush_rate(session.sender.blocks_sent, outcomes),
        extras={
            "states_received": session.server.states_received,
            "backend": backend.stats.snapshot(),
            "bandwidth_estimate": session.estimator.estimate,
        },
    )


@dataclass
class FleetRunResult:
    """Everything a fleet experiment needs from one multi-session run."""

    system: str
    fleet_env: FleetEnvironment
    summary: FleetSummary
    diagnostics: dict
    trace_names: list[str] = field(default_factory=list)
    cohorts: list[CohortSummary] = field(default_factory=list)
    session_labels: Optional[list[str]] = None  # plan indices under churn

    def rows(self, **extra_columns: Any) -> list[dict]:
        """Per-session rows plus the pooled ``fleet`` row."""
        return self.summary.rows(
            labels=self.session_labels, system=self.system, **extra_columns
        )

    def cohort_rows(self, **extra_columns: Any) -> list[dict]:
        """One row per arrival cohort (empty for a static fleet run)."""
        return [c.row(system=self.system, **extra_columns) for c in self.cohorts]

    def aggregate_row(self, **extra_columns: Any) -> dict:
        """One row: the pooled metrics plus sharing diagnostics."""
        row = {
            "system": self.system,
            "sessions": self.fleet_env.num_sessions,
            **extra_columns,
            **self.summary.aggregate.as_dict(),
            "link_fairness": self.diagnostics["link_fairness"],
            "shared_hit_%": 100.0 * self.diagnostics["shared_hit_rate"],
        }
        prediction = self.diagnostics.get("prediction")
        if prediction is not None and prediction["ticks"]:
            # Coalescing factor of the fleet schedule service: states
            # recomputed per batched sim event (≈ N for a busy fleet).
            row["pred_batch"] = (
                prediction["sessions_recomputed"]
                / max(1, prediction["batched_recomputes"])
            )
        churn = self.diagnostics.get("churn")
        if churn is not None:
            row["admitted"] = churn["admitted"]
            row["rejected"] = churn["rejected"]
            row["early_hit_%"] = 100.0 * self.diagnostics["early_hit_rate"]
        return row


def _fleet_predictor_factory(
    app: ImageExplorationApp, predictor: str, traces, sim: Simulator,
    shared_prior=None,
):
    """Per-session predictor factory, plus any fleet-shared state.

    ``shared-markov`` is the SeLeP-style deployment: one crowd-warmed
    :class:`~repro.predictors.shared.SharedTransitionPrior` for the whole
    fleet, blended into each session's private chain — cold arrivals
    start from the aggregate transition structure.  ``shared_prior``
    lets the caller supply a pre-populated prior (crowd structure
    carried over from earlier runs — the persistence direction in the
    ROADMAP — or a synthetic warm-up for benchmarks); ``None`` builds a
    fresh one.  Returns ``(make_predictor, prior_or_None)``.

    The factory is invoked at *admission* time.  The oracle reads the
    user's future by absolute simulator time, so under churn its trace
    is re-based to the arrival instant (``sim.now`` at admission) to
    match the replay's timeline; ``shifted(0)`` is the identity, so the
    static path is untouched.
    """
    if predictor == "shared-markov":
        from repro.predictors.shared import (
            SharedTransitionPrior,
            make_shared_markov_predictor,
        )

        if shared_prior is None:
            prior = SharedTransitionPrior(app.num_requests)
        elif isinstance(shared_prior, (str, os.PathLike)):
            # Warm-start from a prior persisted by an earlier run.
            prior = SharedTransitionPrior.load(shared_prior, n=app.num_requests)
        else:
            prior = shared_prior
        if prior.n != app.num_requests:
            raise ValueError(
                f"shared prior over {prior.n} requests, app has {app.num_requests}"
            )
        return (
            lambda i: make_shared_markov_predictor(app.num_requests, prior),
            prior,
        )
    if shared_prior is not None:
        raise ValueError(
            f"shared_prior only applies to predictor='shared-markov' "
            f"(got {predictor!r})"
        )
    if predictor == "oracle":
        return (
            lambda i: app.make_predictor(
                "oracle", trace=traces[i].shifted(sim.now)
            ),
            None,
        )
    return (lambda i: app.make_predictor(predictor, trace=traces[i]), None)


def run_fleet(
    app: ImageExplorationApp,
    traces: Sequence[InteractionTrace],
    fleet_env: FleetEnvironment,
    predictor: str = "kalman",
    drain_s: float = DEFAULT_DRAIN_S,
    seed: int = 0,
    cohort_width_s: float = 5.0,
    early_k: int = 5,
    shared_prior=None,
) -> FleetRunResult:
    """Replay one trace per session against a shared-resource fleet.

    ``shared_prior`` (``shared-markov`` only) seeds the fleet-wide
    crowd prior with an existing
    :class:`~repro.predictors.shared.SharedTransitionPrior` — or a
    path to one persisted with
    :meth:`~repro.predictors.shared.SharedTransitionPrior.save` —
    instead of a cold one.

    All sessions explore the same application over one backend (shared
    response cache, in-flight dedup, shared §5.4 throttle budget) and
    one downlink split by weighted fair queueing.  ``traces[i]`` drives
    session ``i``.

    With a static ``fleet_env.arrival`` every session starts at t = 0
    and the run lasts until the longest trace ends plus ``drain_s``.
    With a churn config the fleet's
    :class:`~repro.fleet.lifecycle.SessionManager` admits sessions as
    they arrive; each admitted session replays its trace from its
    arrival instant (truncated by departure — the client drops the
    tail), and the diagnostics gain admission/cohort/cold-start views.
    """
    if len(traces) != fleet_env.num_sessions:
        raise ValueError(
            f"{len(traces)} traces for {fleet_env.num_sessions} sessions"
        )
    env = fleet_env.env
    sim = Simulator()
    shared_downlink = make_shared_downlink(sim, env, seed=seed)
    backend = app.make_backend(sim, fetch_delay_s=env.backend_delay_s)
    make_predictor, prior = _fleet_predictor_factory(
        app, predictor, traces, sim, shared_prior=shared_prior
    )

    fleet = KhameleonFleet(
        sim=sim,
        backend=backend,
        make_predictor=make_predictor,
        utility=app.utility,
        num_blocks=app.num_blocks,
        downlink=shared_downlink,
        make_uplink=lambda i: make_uplink(sim, env),
        config=fleet_env.fleet_config(
            SessionConfig(
                cache_bytes=env.cache_bytes,
                block_bytes=app.block_bytes,
                scheduler_seed=seed,
                initial_bandwidth_bytes_per_s=env.bandwidth_bytes_per_s,
            )
        ),
    )

    if fleet.manager is None:
        for session, trace in zip(fleet.sessions, traces):
            _replay(sim, trace, session.client.observe, session.client.request)
        fleet.start()
        sim.run(until=max(t.duration_s for t in traces) + drain_s)
        fleet.stop()
    else:

        def replay_from_arrival(record) -> None:
            _replay(
                sim,
                traces[record.index],
                record.session.client.observe,
                record.session.client.request,
                offset_s=record.arrived_at,
            )

        fleet.manager.on_admit = replay_from_arrival
        fleet.start()
        horizon = fleet.manager.horizon_s(lambda i: traces[i].duration_s)
        sim.run(until=horizon + drain_s)
        fleet.stop()

    diagnostics = fleet.report()
    if prior is not None:
        diagnostics["shared_prior"] = prior.snapshot()
    outcomes_by_session = fleet.outcomes_by_session()
    cohorts: list[CohortSummary] = []
    if fleet.manager is not None:
        # fleet.sessions and the manager's admitted records share
        # admission order, so these streams and times are parallel.
        cohorts = collect_cohorts(
            outcomes_by_session,
            fleet.manager.arrival_times(),
            cohort_width_s=cohort_width_s,
        )
        rates = [
            early_hit_rate(o, first_k=early_k) for o in outcomes_by_session if o
        ]
        diagnostics["early_hit_rate"] = sum(rates) / len(rates) if rates else 0.0

    return FleetRunResult(
        system=f"fleet-{predictor}",
        fleet_env=fleet_env,
        summary=fleet.summary(),
        diagnostics=diagnostics,
        trace_names=[t.name for t in traces],
        cohorts=cohorts,
        session_labels=(
            None
            if fleet.manager is None
            else [str(r.index) for r in fleet.manager.admitted_records]
        ),
    )


def run_classic(
    app: ImageExplorationApp,
    trace: InteractionTrace,
    env: EnvironmentConfig,
    variant: str = "full",
    acc: Optional[tuple[float, int]] = None,
    seed: int = 0,
) -> RunResult:
    """Replay ``trace`` against a request-response system.

    ``variant="full"`` is the paper's Baseline, ``"first_block"`` its
    Progressive arm.  ``acc=(accuracy, horizon)`` attaches the
    idealized ACC prefetcher (always over full responses, as in §6.1).
    """
    sim = Simulator()
    downlink = make_downlink(sim, env, seed=seed)
    uplink = make_uplink(sim, env)
    backend = app.make_backend(sim, fetch_delay_s=env.backend_delay_s)
    session = ClassicSession(
        sim=sim,
        backend=backend,
        utility=app.utility,
        num_blocks_of=lambda r: app.encoder.num_blocks(r),
        downlink=downlink,
        uplink=uplink,
        config=ClassicConfig(cache_bytes=env.cache_bytes, variant=variant),
    )
    prefetcher = None
    on_position = None
    if acc is not None:
        accuracy, horizon = acc
        request_ids = [e.request for e in trace.requests()]
        prefetcher = ACCPrefetcher(
            session=session,
            future_requests=request_ids,
            accuracy=accuracy,
            horizon=horizon,
            outstanding_limit=acc_threshold(
                env.bandwidth_bytes_per_s, app.mean_response_bytes()
            ),
            num_requests=app.num_requests,
            seed=seed,
        )
        on_position = prefetcher.on_user_request

    _replay(
        sim,
        trace,
        observe=lambda event: None,  # classic systems ignore mouse moves
        request=session.request,
        on_request_position=on_position,
    )
    # Classic sessions have no periodic tasks: run to quiescence so
    # queued responses drain and true (possibly huge) latencies are
    # measured rather than truncated.
    sim.run()
    session.finalize()

    if acc is not None:
        name = f"acc-{acc[0]:g}-{acc[1]}"
    elif variant == "first_block":
        name = "progressive"
    else:
        name = "baseline"
    outcomes = session.outcomes
    responses = max(1, session.responses_received)
    return RunResult(
        system=name,
        trace_name=trace.name,
        env=env,
        summary=collect(outcomes),
        outcomes=outcomes,
        blocks_pushed=session.responses_received,
        bytes_pushed=session.bytes_received,
        overpush=session.unused_prefetches / responses if acc is not None else None,
        extras={
            "prefetches_sent": session.prefetches_sent,
            "prefetches_suppressed": (
                prefetcher.prefetches_suppressed if prefetcher else 0
            ),
            "backend": backend.stats.snapshot(),
        },
    )


def run_falcon(
    app: FalconApp,
    trace: "FalconTrace",
    env: EnvironmentConfig,
    predictor: str = "kalman",
    backend_kind: str = "postgres",
    db_scale: str = "small",
    drain_s: float = DEFAULT_DRAIN_S,
    seed: int = 0,
    cache_responses: int = 0,
) -> RunResult:
    """Khameleon over the ported Falcon application (§6.4, Fig. 14).

    ``backend_kind`` selects the PostgreSQL-like engine (15-query
    concurrency limit + §5.4 throttle) or the ScalableSQL simulation.
    ``cache_responses`` sizes the client ring buffer in responses
    (default: one full response per chart).

    Selection commits in the trace invalidate every cached slice: the
    backend's response cache and the client block cache immediately
    (both are client/app knowledge), and the server's scheduler mirror
    one uplink latency later (when the server learns).
    """
    if backend_kind not in ("postgres", "scalable"):
        raise ValueError(f"unknown backend {backend_kind!r}")
    sim = Simulator()
    downlink = make_downlink(sim, env, seed=seed)
    uplink = make_uplink(sim, env)
    db = app.make_db(sim, scale=db_scale, scalable=backend_kind == "scalable", seed=seed)
    backend = app.make_backend(sim, db)

    block_bytes = app.nominal_block_bytes()
    responses = cache_responses if cache_responses > 0 else app.num_requests
    cache_blocks = responses * app.blocks_per_response
    config = SessionConfig(
        cache_bytes=cache_blocks * block_bytes,
        block_bytes=block_bytes,
        scheduler_seed=seed,
        initial_bandwidth_bytes_per_s=env.bandwidth_bytes_per_s,
        backend_concurrency=(
            app.max_concurrent_requests if backend_kind == "postgres" else None
        ),
    )
    session = KhameleonSession(
        sim=sim,
        backend=backend,
        predictor=app.make_predictor(predictor, trace=trace.interaction),
        utility=app.utility,
        num_blocks=app.num_blocks,
        downlink=downlink,
        uplink=uplink,
        config=config,
    )
    _replay(sim, trace.interaction, session.client.observe, session.client.request)

    def commit_selection(event) -> None:
        app.apply_selection(event)  # also clears the backend response cache
        session.cache.clear()
        # The server's mirror learns after one uplink hop.
        uplink.send(lambda _payload: session.mirror.clear())

    for sel in trace.selections:
        sim.schedule_at(sel.time_s, commit_selection, sel)

    session.start()
    sim.run(until=trace.duration_s + drain_s)
    session.stop()

    outcomes = session.cache_manager.outcomes
    return RunResult(
        system=f"khameleon-{predictor}-{backend_kind}",
        trace_name=trace.name,
        env=env,
        summary=collect(outcomes),
        outcomes=outcomes,
        blocks_pushed=session.sender.blocks_sent,
        bytes_pushed=session.sender.bytes_sent,
        overpush=overpush_rate(session.sender.blocks_sent, outcomes),
        extras={
            "queries_executed": db.queries_executed,
            "peak_db_concurrency": getattr(db, "peak_concurrency", None),
            "blocks_deferred": session.sender.blocks_deferred,
        },
    )


def extend_with_pause(
    trace: InteractionTrace, pause_s: float, hold_s: float, sample_rate_hz: float = 20.0
) -> InteractionTrace:
    """Truncate at ``pause_s`` and hold the mouse still for ``hold_s``.

    The Fig. 10 protocol: the user stops on a request.  Stationary
    samples keep anytime predictors honest (a Kalman filter fed no
    events would extrapolate the last velocity off the interface).
    """
    if hold_s <= 0:
        raise ValueError("hold duration must be positive")
    base = trace.truncated(pause_s)
    x, y = base.events[-1].x, base.events[-1].y
    t = base.events[-1].time_s
    dt = 1.0 / sample_rate_hz
    events = list(base.events)
    while t + dt <= pause_s + hold_s:
        t += dt
        events.append(TraceEvent(t, x, y))
    return InteractionTrace(events, name=f"{trace.name}|pause@{pause_s:g}s")


def run_convergence(
    app: ImageExplorationApp,
    trace: InteractionTrace,
    env: EnvironmentConfig,
    system: str,
    pause_s: float,
    hold_s: float = 10.0,
    sample_points: Sequence[float] = (),
    seed: int = 0,
) -> list[tuple[float, float]]:
    """Utility-vs-elapsed-time after a pause (Fig. 10).

    Returns ``(elapsed_s, utility)`` samples for the request the user
    paused on, measured from its registration.
    """
    paused = extend_with_pause(trace, pause_s, hold_s)
    result = run_image_system(system, app, paused, env, drain_s=hold_s, seed=seed)
    served = [o for o in result.outcomes if o.served or not o.preempted]
    if not served:
        return [(p, 0.0) for p in sample_points]
    final = max(served, key=lambda o: o.logical_ts)
    points = sample_points or [0.05 * (1.35**i) for i in range(24)]
    return convergence_curve(final, horizon_s=hold_s, points=points)


def run_image_system(
    system: str,
    app: ImageExplorationApp,
    trace: InteractionTrace,
    env: EnvironmentConfig,
    drain_s: float = DEFAULT_DRAIN_S,
    seed: int = 0,
) -> RunResult:
    """Dispatch a system name from the figures to the right driver.

    Names: ``khameleon``, ``khameleon-oracle``, ``khameleon-uniform``,
    ``predictor`` (no progressive encoding), ``progressive`` (no
    prefetch), ``baseline``, and ``acc-<acc>-<hor>``.
    """
    if system == "khameleon":
        return run_khameleon(app, trace, env, predictor="kalman", drain_s=drain_s, seed=seed)
    if system == "khameleon-oracle":
        return run_khameleon(app, trace, env, predictor="oracle", drain_s=drain_s, seed=seed)
    if system == "khameleon-uniform":
        return run_khameleon(app, trace, env, predictor="uniform", drain_s=drain_s, seed=seed)
    if system == "predictor":
        return run_khameleon(
            app, trace, env, predictor="kalman", progressive=False, drain_s=drain_s, seed=seed
        )
    if system == "baseline":
        return run_classic(app, trace, env, variant="full", seed=seed)
    if system == "progressive":
        return run_classic(app, trace, env, variant="first_block", seed=seed)
    if system.startswith("acc-"):
        parts = system.split("-")
        if len(parts) != 3:
            raise ValueError(f"bad ACC spec {system!r} (want acc-<acc>-<hor>)")
        accuracy, horizon = float(parts[1]), int(parts[2])
        return run_classic(app, trace, env, variant="full", acc=(accuracy, horizon), seed=seed)
    raise ValueError(f"unknown system {system!r}")

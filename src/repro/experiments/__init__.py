"""Experiment drivers: one function per paper figure (§6, Appendix).

* :mod:`repro.experiments.configs` — the §6.1 environment grid
  (bandwidth, cache, request latency, cellular traces) and the
  low/medium/high resource settings of §6.2.
* :mod:`repro.experiments.runner` — end-to-end drivers that wire an
  application + trace + environment into a Khameleon session or a
  baseline session, replay the trace, and collect metrics.
* :mod:`repro.experiments.figures` — per-figure sweeps returning the
  rows each figure plots; the benchmark harness prints them.
"""

from .configs import (
    DEFAULT_ENV,
    DEFAULT_FLEET,
    HIGH_RESOURCE,
    LOW_RESOURCE,
    MED_RESOURCE,
    EnvironmentConfig,
    FleetEnvironment,
)
from .runner import (
    FleetRunResult,
    RunResult,
    run_classic,
    run_convergence,
    run_falcon,
    run_fleet,
    run_khameleon,
)

__all__ = [
    "EnvironmentConfig",
    "FleetEnvironment",
    "DEFAULT_ENV",
    "DEFAULT_FLEET",
    "LOW_RESOURCE",
    "MED_RESOURCE",
    "HIGH_RESOURCE",
    "RunResult",
    "FleetRunResult",
    "run_khameleon",
    "run_classic",
    "run_falcon",
    "run_fleet",
    "run_convergence",
]

"""The time/scheduling seam: the :class:`Clock` protocol and wall-clock driver.

Every Khameleon component — sender pacing, predictor ticks, link
serialization, fleet churn — needs exactly four things from its time
source: the current time, one-shot timers (relative and absolute), and
a repeating tick.  :class:`Clock` captures that surface as a structural
protocol so the whole stack can run on either of two drivers:

* :class:`repro.sim.engine.Simulator` — the discrete-event virtual
  clock used by every experiment.  Deterministic, reproducible,
  immune to host jitter; time advances only when events fire.
* :class:`WallClock` (here) — an asyncio-backed driver whose ``now`` is
  the event loop's monotonic clock and whose timers are
  ``loop.call_at`` handles.  This is what ``python -m repro serve``
  runs on: the same sessions, schedulers and fair-share arbiter,
  pushing blocks to real sockets in real time.

Components accept the clock as a constructor argument conventionally
named ``sim`` (the name predates the second driver and is kept so the
hundreds of existing call sites and tests read unchanged); annotate new
code with :class:`Clock` and either driver plugs in.

Semantics both drivers share
----------------------------
* Time is float **seconds**, starting at 0.0 when the clock is created.
* ``schedule(delay, cb, *args)`` rejects negative delays with
  :class:`ClockError`.
* Handles expose ``cancel()`` (idempotent) and ``cancelled``.
* ``every(interval, cb, *args, start=None)`` first fires at ``start``
  (absolute, default ``now + interval``) and rearms itself; ``cancel()``
  — including from inside the callback — stops the repetition.

Where they necessarily differ: the simulator *is* its own scheduler, so
``schedule_at`` strictly rejects past times; under a wall clock "now"
moves between computing a deadline and arming the timer, so
:meth:`WallClock.schedule_at` clamps past times to "as soon as
possible" instead of raising.  Likewise :class:`WallClock` periodic
tasks are drift-free (each target is the previous *target* plus the
interval, not the fire time, and missed periods are skipped in phase)
— which on the simulator's exact clock degenerates to the same
behaviour as :class:`repro.sim.engine.PeriodicTask`.
"""

from __future__ import annotations

import asyncio
import math
from typing import Any, Callable, Optional, Protocol, runtime_checkable

__all__ = [
    "Clock",
    "ClockError",
    "Timer",
    "Repeating",
    "WallClock",
    "WallTimer",
    "WallPeriodicTask",
]


class ClockError(RuntimeError):
    """Invalid use of a clock (negative delay, non-positive interval...)."""


@runtime_checkable
class Timer(Protocol):
    """A cancellable one-shot timer returned by ``schedule``/``schedule_at``."""

    #: Absolute clock time at which the timer fires.
    time: float

    def cancel(self) -> None:
        """Prevent the callback from firing (idempotent; no-op after fire)."""

    @property
    def cancelled(self) -> bool: ...


@runtime_checkable
class Repeating(Protocol):
    """A repeating task returned by ``every`` (sim: ``PeriodicTask``)."""

    def cancel(self) -> None:
        """Stop the repetition (idempotent; safe from inside the callback)."""

    @property
    def cancelled(self) -> bool: ...


@runtime_checkable
class Clock(Protocol):
    """Structural time-source protocol; see the module docstring.

    Satisfied by :class:`repro.sim.engine.Simulator` (virtual time) and
    :class:`WallClock` (asyncio real time).  Driver-specific surface —
    ``Simulator.run``/``run_for``/``peek`` — is deliberately excluded:
    components never drive the clock, only the harness does.
    """

    @property
    def now(self) -> float:
        """Current time in seconds since the clock's origin."""
        ...

    def schedule(
        self, delay: float, callback: Callable[..., Any], *args: Any
    ) -> Timer:
        """Fire ``callback(*args)`` ``delay`` seconds from now."""
        ...

    def schedule_at(
        self, time: float, callback: Callable[..., Any], *args: Any
    ) -> Timer:
        """Fire ``callback(*args)`` at absolute clock ``time``."""
        ...

    def every(
        self,
        interval: float,
        callback: Callable[..., Any],
        *args: Any,
        start: Optional[float] = None,
    ) -> Repeating:
        """Fire ``callback(*args)`` every ``interval`` seconds."""
        ...


# ---------------------------------------------------------------------------
# Wall-clock driver (asyncio)
# ---------------------------------------------------------------------------


class WallTimer:
    """One-shot timer over ``loop.call_at`` (the wall-clock ``EventHandle``)."""

    __slots__ = ("time", "_handle", "_cancelled", "_fired")

    def __init__(self, time: float) -> None:
        self.time = time
        self._handle: Optional[asyncio.TimerHandle] = None
        self._cancelled = False
        self._fired = False

    def cancel(self) -> None:
        """Prevent this timer from firing (idempotent)."""
        if self._cancelled:
            return
        self._cancelled = True
        if self._handle is not None:
            self._handle.cancel()
            self._handle = None

    @property
    def cancelled(self) -> bool:
        return self._cancelled


class WallPeriodicTask:
    """Drift-free repeating task: each target is previous target + interval."""

    __slots__ = ("_clock", "_interval", "_callback", "_args", "_timer", "_target", "_cancelled")

    def __init__(
        self,
        clock: "WallClock",
        interval: float,
        callback: Callable[..., Any],
        args: tuple,
    ) -> None:
        self._clock = clock
        self._interval = interval
        self._callback = callback
        self._args = args
        self._timer: Optional[WallTimer] = None
        self._target = 0.0
        self._cancelled = False

    def _arm(self, at: float) -> None:
        self._target = at
        self._timer = self._clock.schedule_at(at, self._tick)

    def _tick(self) -> None:
        if self._cancelled:
            return
        self._callback(*self._args)
        if self._cancelled:
            return
        nxt = self._target + self._interval
        now = self._clock.now
        if nxt <= now:
            # The callback (or loop congestion) overran one or more full
            # periods: skip the missed firings but keep the phase, so a
            # 150 ms tick stays a 150 ms tick instead of bursting.
            missed = math.floor((now - self._target) / self._interval) + 1
            nxt = self._target + missed * self._interval
        self._arm(nxt)

    def cancel(self) -> None:
        """Stop the periodic task (idempotent)."""
        self._cancelled = True
        if self._timer is not None:
            self._timer.cancel()
            self._timer = None

    @property
    def cancelled(self) -> bool:
        return self._cancelled


class WallClock:
    """Asyncio-backed :class:`Clock`: real time, event-loop timers.

    ``now`` is ``loop.time()`` rebased so the clock starts at 0.0 at
    construction — the same origin convention as a fresh
    :class:`~repro.sim.engine.Simulator`, which keeps absolute-time
    logic (trace offsets, cohort windows, ``busy_until`` bookkeeping)
    meaningful on both drivers.

    Must be created while an event loop is available (pass ``loop``
    explicitly, or construct inside a running coroutine).  Callbacks
    are ordinary synchronous callables, exactly as on the simulator;
    they run on the loop thread.
    """

    def __init__(self, loop: Optional[asyncio.AbstractEventLoop] = None) -> None:
        if loop is None:
            loop = asyncio.get_event_loop()
        self._loop = loop
        self._origin = loop.time()
        self._events_processed = 0

    @property
    def now(self) -> float:
        """Seconds of real (monotonic) time since the clock was created."""
        return self._loop.time() - self._origin

    @property
    def events_processed(self) -> int:
        """Timer callbacks fired so far (diagnostics, mirrors Simulator)."""
        return self._events_processed

    def schedule(
        self, delay: float, callback: Callable[..., Any], *args: Any
    ) -> WallTimer:
        """Fire ``callback(*args)`` after ``delay`` seconds of real time."""
        if delay < 0:
            raise ClockError(f"cannot schedule into the past (delay={delay!r})")
        return self.schedule_at(self.now + delay, callback, *args)

    def schedule_at(
        self, time: float, callback: Callable[..., Any], *args: Any
    ) -> WallTimer:
        """Fire ``callback(*args)`` at absolute clock ``time``.

        A ``time`` already in the past fires as soon as possible rather
        than raising: real time advances between computing a deadline
        and arming the timer, so strictness here would turn benign
        scheduling jitter into crashes (contrast the simulator, whose
        virtual clock makes past times a genuine logic error).
        """
        timer = WallTimer(time)

        def _fire() -> None:
            timer._handle = None
            timer._fired = True
            if not timer._cancelled:
                self._events_processed += 1
                callback(*args)

        timer._handle = self._loop.call_at(self._origin + time, _fire)
        return timer

    def every(
        self,
        interval: float,
        callback: Callable[..., Any],
        *args: Any,
        start: Optional[float] = None,
    ) -> WallPeriodicTask:
        """Run ``callback(*args)`` every ``interval`` seconds (drift-free)."""
        if interval <= 0:
            raise ClockError(f"interval must be positive (got {interval!r})")
        task = WallPeriodicTask(self, interval, callback, args)
        first = self.now + interval if start is None else start
        task._arm(first)
        return task

"""Chaos configuration: one knob panel for every fault source.

``ChaosConfig`` gathers the individual fault injectors —
:class:`~repro.sim.failures.FlakyBackend` (transparent retries),
:class:`~repro.sim.failures.ErraticBackend` (hard errors + latency
spikes, absorbed by a :class:`~repro.backends.retry.RetryingBackend`),
:class:`~repro.sim.failures.OutageLink` (dead-link windows), and
worker crash-at-round schedules consumed by the sharded fleet's
supervision loop — into a single declarative config threaded through
``FleetConfig``, the sharded path, and ``python -m repro fleet
--chaos ...``.

The CLI spec is a comma-separated list of faults::

    worker-crash:R       crash shard 0's worker before sync round R
    worker-crash:S@R     crash shard S's worker before sync round R
    backend-err:P        fraction P of fetches raise BackendFetchError
    spike:P@S            fraction P of fetches delayed by S seconds
    outage:A-B           link outage window [A, B) seconds
    flaky:N              every Nth fetch delayed one transparent retry
    disconnect:P@S       drop session P's live connection at S seconds
    disconnect:S         shorthand: drop session 0's connection at S
    drain:R              graceful drain after sync round R (mid-run
                         SIGTERM: stop, checkpoint, exit clean)
    partition:A-B@R      cut coordinator<->worker links for shards
                         A..B at sync round R (heals on its own)
    netdelay:MS:P        delay fraction P of transport frames by MS ms
    dup:P                duplicate fraction P of transport frames
    corrupt:P            bit-flip fraction P of transport frames

e.g. ``--chaos worker-crash:1,backend-err:0.05``.  Connection drops
are consumed by the serve frontend (``python -m repro serve --chaos``)
to exercise reconnect-and-resume; ``drain:R`` is consumed by the
sharded fleet runner to exercise the ``--checkpoint-out`` /
``--checkpoint-in`` drain/restore cycle.  The last four rows are
*network* faults injected inside the fleet transport driver itself —
they require ``--transport tcp`` (a pipe has no wire to corrupt) and
are defended by the frame CRC / ack-retransmit / dedup machinery in
:mod:`repro.fleet.transport`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Optional

if TYPE_CHECKING:
    from repro.backends.base import Backend, BackendWrapper
    from repro.sim.link import Link

from repro.backends.retry import RetryingBackend, RetryPolicy

__all__ = ["ChaosConfig", "BackendFaultStack"]


@dataclass
class BackendFaultStack:
    """The wrapper chain a chaos config builds around a backend.

    ``top`` is what the fleet should use in place of the raw backend;
    the intermediate references exist so reports can surface injected
    and absorbed fault counts.
    """

    top: "Backend | BackendWrapper"
    flaky: Optional[object] = None
    erratic: Optional[object] = None
    retry: Optional[RetryingBackend] = None

    def snapshot(self) -> dict:
        out: dict = {}
        if self.flaky is not None:
            out["flaky_failures_injected"] = self.flaky.failures_injected
        if self.erratic is not None:
            out["errors_injected"] = self.erratic.errors_injected
            out["spikes_injected"] = self.erratic.spikes_injected
        if self.retry is not None:
            out.update(self.retry.snapshot())
        return out


@dataclass(frozen=True)
class ChaosConfig:
    """Declarative fault schedule for a fleet run.

    All fields default to "no fault"; an all-default config is inert
    (``wrap_backend`` returns the backend unchanged), which is what
    keeps chaos-disabled runs bit-identical to the un-instrumented
    paths.
    """

    backend_error_rate: float = 0.0
    backend_spike_rate: float = 0.0
    backend_spike_s: float = 1.0
    flaky_period: int = 0  # 0 = disabled
    flaky_retry_s: float = 0.2
    link_outages: tuple[tuple[float, float], ...] = ()
    worker_crashes: tuple[tuple[int, int], ...] = ()  # (shard, sync round)
    disconnects: tuple[tuple[int, float], ...] = ()  # (session, at seconds)
    drain_round: Optional[int] = None  # graceful drain after this sync round
    partitions: tuple[tuple[int, int, int], ...] = ()  # (shard lo, hi, round)
    netdelay_ms: float = 0.0
    netdelay_rate: float = 0.0
    dup_rate: float = 0.0
    corrupt_rate: float = 0.0
    retry: RetryPolicy = field(default_factory=RetryPolicy)
    seed: int = 0

    def __post_init__(self) -> None:
        if not 0.0 <= self.backend_error_rate <= 1.0:
            raise ValueError("backend_error_rate must be in [0, 1]")
        if not 0.0 <= self.backend_spike_rate <= 1.0:
            raise ValueError("backend_spike_rate must be in [0, 1]")
        if self.flaky_period < 0:
            raise ValueError("flaky_period must be >= 0 (0 disables)")
        for shard, round_ in self.worker_crashes:
            if shard < 0 or round_ < 0:
                raise ValueError(f"bad worker crash ({shard}, {round_})")
        for session, at_s in self.disconnects:
            if session < 0 or at_s < 0:
                raise ValueError(f"bad disconnect ({session}, {at_s})")
        if self.drain_round is not None and self.drain_round < 0:
            raise ValueError("drain_round must be >= 0")
        for lo, hi, round_ in self.partitions:
            if lo < 0 or hi < lo or round_ < 0:
                raise ValueError(f"bad partition ({lo}, {hi}, {round_})")
        for rate, label in (
            (self.netdelay_rate, "netdelay_rate"),
            (self.dup_rate, "dup_rate"),
            (self.corrupt_rate, "corrupt_rate"),
        ):
            if not 0.0 <= rate <= 1.0:
                raise ValueError(f"{label} must be in [0, 1]")
        if self.netdelay_ms < 0:
            raise ValueError("netdelay_ms must be >= 0")

    # -- introspection ------------------------------------------------

    @property
    def has_backend_faults(self) -> bool:
        return (
            self.backend_error_rate > 0.0
            or self.backend_spike_rate > 0.0
            or self.flaky_period > 0
        )

    @property
    def has_link_faults(self) -> bool:
        return bool(self.link_outages)

    @property
    def has_worker_faults(self) -> bool:
        return bool(self.worker_crashes)

    @property
    def has_connection_faults(self) -> bool:
        return bool(self.disconnects)

    @property
    def has_drain(self) -> bool:
        return self.drain_round is not None

    @property
    def has_net_faults(self) -> bool:
        """Faults that live inside the transport driver's wire path."""
        return bool(self.partitions) or (
            self.netdelay_rate > 0.0
            or self.dup_rate > 0.0
            or self.corrupt_rate > 0.0
        )

    @property
    def is_inert(self) -> bool:
        return not (
            self.has_backend_faults
            or self.has_link_faults
            or self.has_worker_faults
            or self.has_connection_faults
            or self.has_drain
            or self.has_net_faults
        )

    def partitions_at(self, round_index: int) -> list[tuple[int, int]]:
        """``(lo, hi)`` shard ranges to cut before ``round_index``."""
        return [(lo, hi) for lo, hi, r in self.partitions if r == round_index]

    def net_spec(self):
        """The picklable transport-level slice of this config."""
        from repro.fleet.transport import NetChaosSpec

        return NetChaosSpec(
            netdelay_ms=self.netdelay_ms,
            netdelay_rate=self.netdelay_rate,
            dup_rate=self.dup_rate,
            corrupt_rate=self.corrupt_rate,
            seed=self.seed,
        )

    def crash_round(self, shard: int) -> Optional[int]:
        """The sync round before which ``shard``'s worker should crash."""
        for s, r in self.worker_crashes:
            if s == shard:
                return r
        return None

    def disconnect_at(self, session: int) -> Optional[float]:
        """Seconds at which ``session``'s connection should be dropped."""
        for s, at_s in self.disconnects:
            if s == session:
                return at_s
        return None

    # -- wiring -------------------------------------------------------

    def wrap_backend(self, backend: "Backend") -> BackendFaultStack:
        """Build the fault-injection + retry chain around ``backend``.

        Order (inside out): flaky (transparent retries) → erratic
        (hard errors / spikes) → retry (absorbs the hard errors).  The
        retry layer is added whenever errors can be injected, so no
        injected error ever propagates into the sender.
        """
        from repro.sim.failures import ErraticBackend, FlakyBackend

        stack = BackendFaultStack(top=backend)
        if self.flaky_period > 0:
            stack.flaky = FlakyBackend(
                stack.top, failure_period=self.flaky_period,
                retry_delay_s=self.flaky_retry_s,
            )
            stack.top = stack.flaky
        if self.backend_error_rate > 0.0 or self.backend_spike_rate > 0.0:
            stack.erratic = ErraticBackend(
                stack.top,
                error_rate=self.backend_error_rate,
                spike_rate=self.backend_spike_rate,
                spike_s=self.backend_spike_s,
                seed=self.seed,
            )
            stack.top = stack.erratic
        if self.backend_error_rate > 0.0:
            stack.retry = RetryingBackend(stack.top, self.retry)
            stack.top = stack.retry
        return stack

    def wrap_link(self, link: "Link") -> "Link":
        """Wrap ``link`` in an OutageLink when outage windows are set."""
        if not self.link_outages:
            return link
        from repro.sim.failures import OutageLink

        return OutageLink(link, self.link_outages)

    # -- CLI spec -----------------------------------------------------

    @classmethod
    def parse(cls, spec: str, seed: int = 0) -> "ChaosConfig":
        """Parse a ``--chaos`` CLI spec (see module docstring)."""
        error_rate = 0.0
        spike_rate = 0.0
        spike_s = 1.0
        flaky_period = 0
        outages: list[tuple[float, float]] = []
        crashes: list[tuple[int, int]] = []
        disconnects: list[tuple[int, float]] = []
        drain_round: Optional[int] = None
        partitions: list[tuple[int, int, int]] = []
        netdelay_ms = 0.0
        netdelay_rate = 0.0
        dup_rate = 0.0
        corrupt_rate = 0.0
        for part in spec.split(","):
            part = part.strip()
            if not part:
                continue
            if ":" not in part:
                raise ValueError(f"bad chaos fault {part!r} (expected name:value)")
            name, _, value = part.partition(":")
            name = name.strip().lower()
            value = value.strip()
            try:
                if name == "worker-crash":
                    if "@" in value:
                        shard_s, _, round_s = value.partition("@")
                        crashes.append((int(shard_s), int(round_s)))
                    else:
                        crashes.append((0, int(value)))
                elif name == "backend-err":
                    error_rate = float(value)
                elif name == "spike":
                    if "@" in value:
                        rate_s, _, dur_s = value.partition("@")
                        spike_rate = float(rate_s)
                        spike_s = float(dur_s)
                    else:
                        spike_rate = float(value)
                elif name == "outage":
                    start_s, _, end_s = value.partition("-")
                    outages.append((float(start_s), float(end_s)))
                elif name == "flaky":
                    flaky_period = int(value)
                elif name == "disconnect":
                    if "@" in value:
                        session_s, _, at_s = value.partition("@")
                        disconnects.append((int(session_s), float(at_s)))
                    else:
                        disconnects.append((0, float(value)))
                elif name == "drain":
                    drain_round = int(value)
                elif name == "partition":
                    range_s, _, round_s = value.partition("@")
                    lo_s, _, hi_s = range_s.partition("-")
                    hi_s = hi_s or lo_s  # partition:S@R cuts one shard
                    partitions.append((int(lo_s), int(hi_s), int(round_s)))
                elif name == "netdelay":
                    ms_s, _, rate_s = value.partition(":")
                    netdelay_ms = float(ms_s)
                    netdelay_rate = float(rate_s) if rate_s else 1.0
                elif name == "dup":
                    dup_rate = float(value)
                elif name == "corrupt":
                    corrupt_rate = float(value)
                else:
                    raise ValueError(f"unknown chaos fault {name!r}")
            except ValueError as exc:
                if "unknown chaos fault" in str(exc) or "bad chaos fault" in str(exc):
                    raise
                raise ValueError(f"bad chaos fault value {part!r}") from exc
        return cls(
            backend_error_rate=error_rate,
            backend_spike_rate=spike_rate,
            backend_spike_s=spike_s,
            flaky_period=flaky_period,
            link_outages=tuple(outages),
            worker_crashes=tuple(crashes),
            disconnects=tuple(disconnects),
            drain_round=drain_round,
            partitions=tuple(partitions),
            netdelay_ms=netdelay_ms,
            netdelay_rate=netdelay_rate,
            dup_rate=dup_rate,
            corrupt_rate=corrupt_rate,
            seed=seed,
        )

    def describe(self) -> str:
        """Short human-readable summary for report titles."""
        parts = []
        if self.worker_crashes:
            parts.append(
                "crash " + "+".join(f"s{s}@r{r}" for s, r in self.worker_crashes)
            )
        if self.backend_error_rate > 0.0:
            parts.append(f"err {self.backend_error_rate:g}")
        if self.backend_spike_rate > 0.0:
            parts.append(f"spike {self.backend_spike_rate:g}@{self.backend_spike_s:g}s")
        if self.flaky_period > 0:
            parts.append(f"flaky 1/{self.flaky_period}")
        if self.link_outages:
            parts.append(
                "outage " + "+".join(f"{a:g}-{b:g}s" for a, b in self.link_outages)
            )
        if self.disconnects:
            parts.append(
                "disconnect "
                + "+".join(f"c{s}@{t:g}s" for s, t in self.disconnects)
            )
        if self.drain_round is not None:
            parts.append(f"drain @r{self.drain_round}")
        if self.partitions:
            parts.append(
                "partition "
                + "+".join(f"s{lo}-{hi}@r{r}" for lo, hi, r in self.partitions)
            )
        if self.netdelay_rate > 0.0:
            parts.append(f"netdelay {self.netdelay_ms:g}ms p{self.netdelay_rate:g}")
        if self.dup_rate > 0.0:
            parts.append(f"dup {self.dup_rate:g}")
        if self.corrupt_rate > 0.0:
            parts.append(f"corrupt {self.corrupt_rate:g}")
        return ", ".join(parts) if parts else "none"

"""Time-binned session metrics.

The aggregate §6.1 metrics hide *when* a system struggles: a burst of
misses at the start of a session and a mid-session congestion collapse
produce identical means.  :func:`bin_outcomes` slices a run's request
outcomes into fixed windows, yielding per-window hit rate, latency,
and utility series — the view used when debugging predictor or
scheduler regressions (§3.4: "assess the benefits of any modifications
... based on ... cache hit rates").
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

from repro.core.cache_manager import RequestOutcome

__all__ = ["WindowMetrics", "bin_outcomes"]


@dataclass(frozen=True)
class WindowMetrics:
    """One time window's worth of request metrics."""

    start_s: float
    end_s: float
    num_requests: int
    num_served: int
    num_preempted: int
    cache_hit_rate: float
    mean_latency_s: float
    mean_utility: float

    @property
    def midpoint_s(self) -> float:
        return (self.start_s + self.end_s) / 2.0


def bin_outcomes(
    outcomes: Sequence[RequestOutcome],
    window_s: float,
    duration_s: float = 0.0,
) -> list[WindowMetrics]:
    """Slice outcomes into ``window_s``-wide bins by registration time.

    ``duration_s`` extends the series to a fixed horizon (empty
    trailing windows included), so series from different systems align
    bin-for-bin.  Latency/utility/hit-rate within a window follow the
    same §6.1 accounting as the aggregate collector: served requests
    only, preempted requests counted separately.
    """
    if window_s <= 0:
        raise ValueError("window must be positive")
    last = max((o.registered_at for o in outcomes), default=0.0)
    horizon = max(duration_s, last + 1e-9)
    num_windows = int(np.ceil(horizon / window_s))
    buckets: list[list[RequestOutcome]] = [[] for _ in range(num_windows)]
    for outcome in outcomes:
        index = min(int(outcome.registered_at / window_s), num_windows - 1)
        buckets[index].append(outcome)

    series = []
    for i, bucket in enumerate(buckets):
        served = [o for o in bucket if o.served]
        preempted = [o for o in bucket if o.preempted]
        latencies = [o.latency_s for o in served]
        utilities = [o.utility_at_upcall for o in served]
        hits = sum(1 for o in served if o.cache_hit)
        answerable = len(bucket) - len(preempted)
        series.append(
            WindowMetrics(
                start_s=i * window_s,
                end_s=(i + 1) * window_s,
                num_requests=len(bucket),
                num_served=len(served),
                num_preempted=len(preempted),
                cache_hit_rate=hits / answerable if answerable else 0.0,
                mean_latency_s=float(np.mean(latencies)) if latencies else 0.0,
                mean_utility=float(np.mean(utilities)) if utilities else 0.0,
            )
        )
    return series

"""Outcome aggregation into the paper's §6.1 metrics.

The collector consumes the :class:`~repro.core.cache_manager.RequestOutcome`
records that both the Khameleon cache manager and the classic baseline
sessions produce, so every system is measured identically.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Optional, Sequence

import numpy as np

from repro.core.cache_manager import RequestOutcome

__all__ = ["MetricSummary", "collect", "convergence_curve", "overpush_rate"]


@dataclass(frozen=True)
class MetricSummary:
    """One experimental condition's worth of §6.1 metrics."""

    num_requests: int
    num_served: int
    num_preempted: int
    num_unanswered: int
    cache_hit_rate: float
    preempted_rate: float
    mean_latency_s: float
    median_latency_s: float
    p95_latency_s: float
    mean_utility: float

    @property
    def mean_latency_ms(self) -> float:
        return self.mean_latency_s * 1e3

    @property
    def log10_latency_ms(self) -> float:
        """The paper plots latency on a log axis; 0 if no request served."""
        if self.mean_latency_s <= 0:
            return 0.0
        return float(np.log10(self.mean_latency_s * 1e3))

    def as_dict(self) -> dict:
        return {
            "requests": self.num_requests,
            "served": self.num_served,
            "preempted": self.num_preempted,
            "unanswered": self.num_unanswered,
            "cache_hit_%": 100.0 * self.cache_hit_rate,
            "preempted_%": 100.0 * self.preempted_rate,
            "latency_ms": self.mean_latency_ms,
            "median_latency_ms": self.median_latency_s * 1e3,
            "p95_latency_ms": self.p95_latency_s * 1e3,
            "utility": self.mean_utility,
        }


def collect(outcomes: Sequence[RequestOutcome]) -> MetricSummary:
    """Aggregate a run's request outcomes.

    Mirrors the paper's accounting: preempted requests are excluded
    from latency/utility/hit-rate (those are measured over requests
    that actually produced an upcall), and requests still pending at
    the end of the run count as unanswered.
    """
    if not outcomes:
        raise ValueError("no outcomes to collect")
    served = [o for o in outcomes if o.served]
    preempted = [o for o in outcomes if o.preempted]
    unanswered = [o for o in outcomes if not o.served and not o.preempted]
    n = len(outcomes)
    latencies = np.array([o.latency_s for o in served], dtype=float)
    utilities = np.array([o.utility_at_upcall for o in served], dtype=float)
    hits = sum(1 for o in served if o.cache_hit)
    return MetricSummary(
        num_requests=n,
        num_served=len(served),
        num_preempted=len(preempted),
        num_unanswered=len(unanswered),
        cache_hit_rate=hits / max(1, len(served) + len(unanswered)),
        preempted_rate=len(preempted) / n,
        mean_latency_s=float(latencies.mean()) if len(latencies) else 0.0,
        median_latency_s=float(np.median(latencies)) if len(latencies) else 0.0,
        p95_latency_s=float(np.percentile(latencies, 95)) if len(latencies) else 0.0,
        mean_utility=float(utilities.mean()) if len(utilities) else 0.0,
    )


def convergence_curve(
    outcome: RequestOutcome, horizon_s: float, points: Iterable[float]
) -> list[tuple[float, float]]:
    """Utility as a function of elapsed time since the request (Fig. 10).

    Samples the step function defined by the initial upcall and its
    improvement upcalls at each elapsed offset in ``points`` (seconds);
    the utility before the first upcall is 0.
    """
    if not outcome.served:
        return [(p, 0.0) for p in points]
    steps: list[tuple[float, float]] = [
        (outcome.served_at - outcome.registered_at, outcome.utility_at_upcall)
    ]
    steps.extend(
        (u.time_s - outcome.registered_at, u.utility) for u in outcome.improvements
    )
    out = []
    for p in points:
        if p > horizon_s:
            break
        utility = 0.0
        for when, value in steps:
            if when <= p:
                utility = value
            else:
                break
        out.append((p, utility))
    return out


def overpush_rate(
    blocks_pushed: int, outcomes: Sequence[RequestOutcome]
) -> Optional[float]:
    """Fraction of pushed blocks never involved in an upcall (§B.2).

    A block counts as *used* if it was available at a request's final
    upcall (initial or improvement) — the paper's "involved in upcalls
    to answer application requests".
    """
    if blocks_pushed <= 0:
        return None
    used = 0
    for outcome in outcomes:
        if not outcome.served:
            continue
        peak = outcome.blocks_at_upcall
        if outcome.improvements:
            peak = max(peak, max(u.blocks_available for u in outcome.improvements))
        used += peak
    return max(0.0, 1.0 - used / blocks_pushed)

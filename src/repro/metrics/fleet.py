"""Per-session and fleet-aggregate metric reports.

A fleet run produces one outcome stream per session.  Every session is
measured with the same §6.1 collector as a single-user run; the fleet
view adds (a) the aggregate over the *pooled* outcome stream — tail
latency across all users, not the mean of per-user tails — and (b)
resource-sharing diagnostics: Jain's fairness index over per-session
delivered bytes and the backend's cross-session dedup rate.

Under **churn** a single run-wide aggregate is misleading: sessions
that arrive into a loaded fleet see different service than the t = 0
pioneers, and a session's first seconds (cold predictor, empty cache)
differ from its steady state.  Three churn-aware views make metrics
comparable:

* :func:`collect_windows` — the pooled stream re-aggregated per
  wall-clock window, so load transients are visible;
* :func:`collect_cohorts` — sessions grouped into arrival-time cohorts
  (all t = 0 sessions form one cohort in the static degenerate case);
* :func:`early_hit_rate` — the cache-hit rate over a session's first
  ``k`` requests, the cold-start number a shared predictor prior is
  meant to improve.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence

from repro.core.cache_manager import RequestOutcome

from .collector import MetricSummary, collect
from .timeseries import WindowMetrics, bin_outcomes

__all__ = [
    "FleetSummary",
    "CohortSummary",
    "collect_fleet",
    "collect_windows",
    "collect_cohorts",
    "early_hit_rate",
    "jain_fairness",
    "pool_snapshots",
    "pool_transport_counters",
]


@dataclass(frozen=True)
class FleetSummary:
    """§6.1 metrics for a fleet: one summary per session plus the pool.

    ``per_session[i]`` is ``None`` for a session that registered no
    requests (it contributes nothing to the aggregate either).
    """

    aggregate: MetricSummary
    per_session: tuple[Optional[MetricSummary], ...]

    @property
    def num_sessions(self) -> int:
        return len(self.per_session)

    def rows(
        self, labels: Optional[Sequence[str]] = None, **extra_columns
    ) -> list[dict]:
        """Per-session rows plus a final ``fleet`` aggregate row.

        ``labels`` names each session row (default: its position).
        Churn fleets pass the *plan* indices here — with rejected
        arrivals, position ``i`` is not user ``i``, and rows must stay
        joinable against per-user inputs (traces, weights).
        """
        if labels is not None and len(labels) != len(self.per_session):
            raise ValueError(
                f"{len(labels)} labels for {len(self.per_session)} sessions"
            )
        out = []
        for i, summary in enumerate(self.per_session):
            if summary is None:
                continue
            label = str(i) if labels is None else str(labels[i])
            out.append({"session": label, **extra_columns, **summary.as_dict()})
        out.append({"session": "fleet", **extra_columns, **self.aggregate.as_dict()})
        return out


def collect_fleet(
    outcomes_by_session: Sequence[Sequence[RequestOutcome]],
) -> FleetSummary:
    """Aggregate one outcome stream per session into a :class:`FleetSummary`."""
    pooled = [o for outcomes in outcomes_by_session for o in outcomes]
    if not pooled:
        raise ValueError("no outcomes in any session")
    return FleetSummary(
        aggregate=collect(pooled),
        per_session=tuple(
            collect(outcomes) if outcomes else None
            for outcomes in outcomes_by_session
        ),
    )


def collect_windows(
    outcomes_by_session: Sequence[Sequence[RequestOutcome]],
    window_s: float,
    duration_s: float = 0.0,
) -> list[WindowMetrics]:
    """Fleet-pooled time-windowed metrics.

    Pools every session's outcome stream and slices it with
    :func:`repro.metrics.timeseries.bin_outcomes`, so the per-window
    accounting matches the single-session debugging view.  Under churn
    this is the load curve: windows where arrivals outpace departures
    show their latency cost instead of averaging into the run total.
    """
    pooled = [o for outcomes in outcomes_by_session for o in outcomes]
    return bin_outcomes(pooled, window_s, duration_s=duration_s)


@dataclass(frozen=True)
class CohortSummary:
    """Pooled §6.1 metrics for sessions that arrived in one time bucket."""

    cohort_start_s: float
    num_sessions: int
    summary: Optional[MetricSummary]  # None when the cohort registered nothing

    def row(self, **extra_columns) -> dict:
        out = {
            "cohort_s": self.cohort_start_s,
            "sessions": self.num_sessions,
            **extra_columns,
        }
        if self.summary is not None:
            out.update(self.summary.as_dict())
        return out


def collect_cohorts(
    outcomes_by_session: Sequence[Sequence[RequestOutcome]],
    arrival_times: Sequence[float],
    cohort_width_s: float,
) -> list[CohortSummary]:
    """Group sessions into arrival-time cohorts and pool each cohort.

    ``arrival_times[i]`` is session ``i``'s arrival instant; sessions
    arriving within the same ``cohort_width_s`` bucket pool their
    outcomes.  A static fleet (everyone at t = 0) collapses to a single
    cohort, which is exactly the plain fleet aggregate.
    """
    if len(outcomes_by_session) != len(arrival_times):
        raise ValueError(
            f"{len(outcomes_by_session)} outcome streams for "
            f"{len(arrival_times)} arrival times"
        )
    if cohort_width_s <= 0:
        raise ValueError("cohort width must be positive")
    grouped: dict[int, list] = {}
    members: dict[int, int] = {}
    for outcomes, arrived in zip(outcomes_by_session, arrival_times):
        k = int(arrived // cohort_width_s)
        grouped.setdefault(k, []).extend(outcomes)
        members[k] = members.get(k, 0) + 1
    return [
        CohortSummary(
            cohort_start_s=k * cohort_width_s,
            num_sessions=members[k],
            summary=collect(grouped[k]) if grouped[k] else None,
        )
        for k in sorted(grouped)
    ]


def early_hit_rate(outcomes: Sequence[RequestOutcome], first_k: int = 5) -> float:
    """Cache-hit rate over a session's first ``k`` registered requests.

    The cold-start number: a freshly arrived session has an empty cache
    and an untrained predictor, so its earliest requests measure how
    fast the system warms it up (and what a crowd-shared prior buys).
    Preempted requests are excluded — they were answered by moving on,
    not by the cache.
    """
    if first_k < 1:
        raise ValueError("first_k must be >= 1")
    head = sorted(outcomes, key=lambda o: o.logical_ts)[:first_k]
    considered = [o for o in head if not o.preempted]
    if not considered:
        return 0.0
    return sum(1 for o in considered if o.cache_hit) / len(considered)


def pool_snapshots(snapshots: Sequence[dict]) -> dict:
    """Fold per-shard counter snapshots into one fleet-wide snapshot.

    A sharded fleet runs one backend / schedule service / churn manager
    per worker; their ``snapshot()`` dicts pool by key:

    * numeric counters sum (``bool`` is *not* numeric here — flags like
      ``batched_decode`` must agree across shards and pass through);
    * keys starting with ``peak_`` take the max — per-shard peaks never
      coincide, so the largest shard's peak is the honest fleet figure;
    * nested dicts recurse; any other equal values pass through.

    With one snapshot this is the identity, which is what keeps a W=1
    sharded report bit-identical to the unsharded one.  Mismatched key
    sets or contradictory non-numeric values raise — silently dropping
    a shard's counters would fake a healthy report.
    """
    if not snapshots:
        raise ValueError("nothing to pool")
    first = snapshots[0]
    for other in snapshots[1:]:
        if set(other) != set(first):
            raise ValueError(
                f"snapshot keys differ: {sorted(first)} vs {sorted(other)}"
            )
    out: dict = {}
    for key in first:
        values = [s[key] for s in snapshots]
        if isinstance(first[key], dict):
            out[key] = pool_snapshots(values)
        elif isinstance(first[key], (int, float)) and not isinstance(first[key], bool):
            out[key] = max(values) if key.startswith("peak_") else sum(values)
        else:
            if any(v != first[key] for v in values[1:]):
                raise ValueError(f"shards disagree on {key!r}: {values}")
            out[key] = first[key]
    return out


#: The shape of a :class:`repro.fleet.transport.TransportCounters`
#: snapshot — the totals row and the no-traffic placeholder both keep
#: this shape so downstream consumers (CLI title, serve /status) never
#: branch on driver.
TRANSPORT_COUNTER_ZERO = {
    "retransmits": 0,
    "crc_rejects": 0,
    "dup_drops": 0,
    "partitions_detected": 0,
    "heartbeat_rtt_ms_max": 0.0,
}


def pool_transport_counters(snapshots) -> dict:
    """Fold per-shard transport-counter snapshots into one totals row.

    Event counters (retransmits, CRC rejects, duplicate drops,
    partitions detected) sum across links; ``heartbeat_rtt_ms_max`` is
    a worst-case latency, so the fleet figure is the max.  An empty
    input (the pipe driver has no wire, hence no counters) yields the
    all-zero shape rather than raising — "no faults possible" and "no
    faults observed" print identically.
    """
    out = dict(TRANSPORT_COUNTER_ZERO)
    for snap in snapshots:
        for key, value in snap.items():
            if key == "heartbeat_rtt_ms_max":
                out[key] = max(out[key], value)
            else:
                out[key] = out.get(key, 0) + value
    return out


def jain_fairness(values: Sequence[float]) -> float:
    """Jain's fairness index: 1.0 = perfectly even, 1/n = one hog.

    Computed over per-session throughput (bytes delivered); weighted
    fleets should divide each session's bytes by its weight first.
    """
    if not values:
        raise ValueError("fairness needs at least one value")
    total = float(sum(values))
    if total == 0.0:
        return 1.0  # nobody got anything: trivially even
    squares = sum(v * v for v in values)
    return total * total / (len(values) * squares)

"""Per-session and fleet-aggregate metric reports.

A fleet run produces one outcome stream per session.  Every session is
measured with the same §6.1 collector as a single-user run; the fleet
view adds (a) the aggregate over the *pooled* outcome stream — tail
latency across all users, not the mean of per-user tails — and (b)
resource-sharing diagnostics: Jain's fairness index over per-session
delivered bytes and the backend's cross-session dedup rate.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence

from repro.core.cache_manager import RequestOutcome

from .collector import MetricSummary, collect

__all__ = ["FleetSummary", "collect_fleet", "jain_fairness"]


@dataclass(frozen=True)
class FleetSummary:
    """§6.1 metrics for a fleet: one summary per session plus the pool.

    ``per_session[i]`` is ``None`` for a session that registered no
    requests (it contributes nothing to the aggregate either).
    """

    aggregate: MetricSummary
    per_session: tuple[Optional[MetricSummary], ...]

    @property
    def num_sessions(self) -> int:
        return len(self.per_session)

    def rows(self, **extra_columns) -> list[dict]:
        """Per-session rows plus a final ``fleet`` aggregate row."""
        out = []
        for i, summary in enumerate(self.per_session):
            if summary is None:
                continue
            out.append({"session": str(i), **extra_columns, **summary.as_dict()})
        out.append({"session": "fleet", **extra_columns, **self.aggregate.as_dict()})
        return out


def collect_fleet(
    outcomes_by_session: Sequence[Sequence[RequestOutcome]],
) -> FleetSummary:
    """Aggregate one outcome stream per session into a :class:`FleetSummary`."""
    pooled = [o for outcomes in outcomes_by_session for o in outcomes]
    if not pooled:
        raise ValueError("no outcomes in any session")
    return FleetSummary(
        aggregate=collect(pooled),
        per_session=tuple(
            collect(outcomes) if outcomes else None
            for outcomes in outcomes_by_session
        ),
    )


def jain_fairness(values: Sequence[float]) -> float:
    """Jain's fairness index: 1.0 = perfectly even, 1/n = one hog.

    Computed over per-session throughput (bytes delivered); weighted
    fleets should divide each session's bytes by its weight first.
    """
    if not values:
        raise ValueError("fairness needs at least one value")
    total = float(sum(values))
    if total == 0.0:
        return 1.0  # nobody got anything: trivially even
    squares = sum(v * v for v in values)
    return total * total / (len(values) * squares)

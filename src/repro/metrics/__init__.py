"""Measurement: the paper's performance metrics (§6.1).

For preemptive interactions the paper reports, per condition:

* **% preempted** — requests dropped because a later request was
  answered first;
* **% cache hits** — non-preempted requests with ≥ 1 block cached at
  registration time;
* **response latency** — registration → first upcall, for served
  requests;
* **response utility** — the utility of the block prefix at upcall
  time;
* **convergence** — how quickly utility reaches 1 after the user
  pauses (Fig. 10);
* **overpush rate** — fraction of pushed data never used by an upcall
  (Fig. 19 / §B.2).
"""

from .collector import MetricSummary, collect, convergence_curve, overpush_rate
from .fleet import (
    CohortSummary,
    FleetSummary,
    collect_cohorts,
    collect_fleet,
    collect_windows,
    early_hit_rate,
    jain_fairness,
)
from .report import format_table, format_series
from .timeseries import WindowMetrics, bin_outcomes

__all__ = [
    "MetricSummary",
    "collect",
    "FleetSummary",
    "CohortSummary",
    "collect_fleet",
    "collect_cohorts",
    "collect_windows",
    "early_hit_rate",
    "jain_fairness",
    "convergence_curve",
    "overpush_rate",
    "format_table",
    "format_series",
    "WindowMetrics",
    "bin_outcomes",
]

"""Plain-text rendering of experiment results.

The benchmark harness prints the same rows/series the paper's figures
plot; these helpers keep that output consistent and diff-friendly.
"""

from __future__ import annotations

from typing import Any, Mapping, Sequence

__all__ = ["format_table", "format_series"]


def _fmt(value: Any) -> str:
    if isinstance(value, float):
        if value == 0:
            return "0"
        if abs(value) >= 1000:
            return f"{value:.0f}"
        if abs(value) >= 10:
            return f"{value:.1f}"
        return f"{value:.3f}"
    return str(value)


def format_table(rows: Sequence[Mapping[str, Any]], title: str = "") -> str:
    """Render dict-rows as an aligned monospace table."""
    if not rows:
        return f"{title}\n(no rows)" if title else "(no rows)"
    columns: list[str] = []
    for row in rows:
        for key in row:
            if key not in columns:
                columns.append(key)
    cells = [[_fmt(row.get(c, "")) for c in columns] for row in rows]
    widths = [
        max(len(c), max((len(line[i]) for line in cells), default=0))
        for i, c in enumerate(columns)
    ]
    out = []
    if title:
        out.append(title)
    out.append("  ".join(c.ljust(w) for c, w in zip(columns, widths)))
    out.append("  ".join("-" * w for w in widths))
    for line in cells:
        out.append("  ".join(v.ljust(w) for v, w in zip(line, widths)))
    return "\n".join(out)


def format_series(
    name: str, xs: Sequence[Any], ys: Sequence[Any], x_label: str = "x", y_label: str = "y"
) -> str:
    """Render one figure series as ``name: (x, y) ...`` pairs."""
    if len(xs) != len(ys):
        raise ValueError("xs and ys must have equal length")
    pairs = ", ".join(f"({_fmt(x)}, {_fmt(y)})" for x, y in zip(xs, ys))
    return f"{name} [{x_label} -> {y_label}]: {pairs}"

"""Single-block encoder (§3.4).

The "generic default" from the developer walkthrough: each response is
one block, so a traditional full response is a special case of a
progressive one.  Registering just this encoder already buys the
application push-based scheduling — the scheduler sends the full
requested item first and hedges with whole other items.
"""

from __future__ import annotations

from typing import Any, Callable

from repro.core.blocks import ProgressiveResponse

from .base import ProgressiveEncoder

__all__ = ["SingleBlockEncoder"]


class SingleBlockEncoder(ProgressiveEncoder):
    """Wraps each response in exactly one block.

    ``size_of(request)`` supplies the response's wire size, so the
    sender can account bandwidth exactly as it would for the original
    (non-progressive) application.
    """

    def __init__(self, size_of: Callable[[int], int]) -> None:
        self.size_of = size_of

    def num_blocks(self, request: int) -> int:
        return 1

    def encode(self, request: int, data: Any) -> ProgressiveResponse:
        size = int(self.size_of(request))
        if size <= 0:
            raise ValueError(f"response size must be positive (got {size})")
        return self._build(request, [size], [data])

"""Progressive encoders (§3.3): naive single-block, image scans,
round-robin row sampling for query results."""

from .base import ProgressiveEncoder, split_padded
from .image import ImageAsset, ProgressiveImageEncoder
from .naive import SingleBlockEncoder
from .wavelet import WaveletEncoder, WaveletPass, wavelet_utility
from .rowsample import (
    RowSampleEncoder,
    RowSamplePayload,
    aggregate_histogram,
    decode_prefix,
    estimation_error,
)

__all__ = [
    "ProgressiveEncoder",
    "split_padded",
    "SingleBlockEncoder",
    "WaveletEncoder",
    "WaveletPass",
    "wavelet_utility",
    "ImageAsset",
    "ProgressiveImageEncoder",
    "RowSampleEncoder",
    "RowSamplePayload",
    "decode_prefix",
    "aggregate_histogram",
    "estimation_error",
]

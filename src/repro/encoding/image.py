"""Progressive image encoder (§3.4, Fig. 3).

The paper's image application uses progressive JPEG: the file is a
sequence of *scans*, each refining the whole image, so any byte prefix
decodes to a coarser rendering.  Block contents are irrelevant to
every Khameleon mechanism (scheduler, cache, network all see sizes and
counts), so this encoder models exactly the observable part: it splits
an image asset's byte size into fixed-size padded blocks and tags each
block with a scan descriptor.

Quality-per-prefix lives in the utility function
(:func:`repro.core.utility.ssim_image_utility`), just as the paper
measures SSIM offline and feeds the curve to the scheduler.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any

from repro.core.blocks import ProgressiveResponse

from .base import ProgressiveEncoder, split_padded

__all__ = ["ImageAsset", "ProgressiveImageEncoder"]


@dataclass(frozen=True)
class ImageAsset:
    """A stored image: identity plus on-disk size (pixels not modelled)."""

    image_id: int
    size_bytes: int
    width: int = 1920
    height: int = 1080

    def __post_init__(self) -> None:
        if self.size_bytes <= 0:
            raise ValueError("image size must be positive")
        if self.width <= 0 or self.height <= 0:
            raise ValueError("image dimensions must be positive")


@dataclass(frozen=True)
class ImageScan:
    """Payload of one block: which progressive scan of which image."""

    image_id: int
    scan: int
    total_scans: int


class ProgressiveImageEncoder(ProgressiveEncoder):
    """Splits images into fixed-size blocks ("scans").

    ``block_size_bytes`` is the knob from §3.4 — finer blocks let the
    scheduler hedge across more requests per unit bandwidth.  Images of
    1.3–2 MB at the default 50 KB yield 26–40 blocks each.
    """

    DEFAULT_BLOCK_SIZE = 50_000

    def __init__(self, assets: dict[int, ImageAsset], block_size_bytes: int = DEFAULT_BLOCK_SIZE) -> None:
        if block_size_bytes <= 0:
            raise ValueError("block size must be positive")
        self.assets = assets
        self.block_size_bytes = block_size_bytes

    def num_blocks(self, request: int) -> int:
        asset = self.assets[request]
        return len(split_padded(asset.size_bytes, self.block_size_bytes))

    def encode(self, request: int, data: Any = None) -> ProgressiveResponse:
        asset = self.assets[request]
        sizes = split_padded(asset.size_bytes, self.block_size_bytes)
        total = len(sizes)
        payloads = [
            ImageScan(image_id=asset.image_id, scan=i, total_scans=total)
            for i in range(total)
        ]
        return self._build(request, sizes, payloads)

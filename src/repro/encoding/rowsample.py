"""Round-robin row-sampling encoder for query results (§6.1, §6.4).

Falcon's progressive encoding "samples rows of the response in a
round-robin fashion. For instance, for a 1D CDF, we sample values
along the x-axis."  Concretely: a query result of R rows split into Nb
blocks puts row ``r`` into block ``r % Nb``, so any prefix of blocks is
a uniform stride-sample of the result.  The decoder scales the partial
aggregate by ``Nb / k`` to estimate the full result from ``k`` blocks.

Unlike the image encoder, this one carries **real data**: the Falcon
experiments compute actual filtered histograms over the flights table
and the client decodes real approximate counts, so approximation error
is measurable (:func:`decode_prefix` + :func:`estimation_error`).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Sequence

import numpy as np

from repro.core.blocks import Block, ProgressiveResponse

from .base import ProgressiveEncoder

__all__ = [
    "RowSampleEncoder",
    "RowSamplePayload",
    "decode_prefix",
    "aggregate_histogram",
    "estimation_error",
]


@dataclass(frozen=True)
class RowSamplePayload:
    """Payload of one block: the rows assigned to this stripe.

    ``rows`` is a 2-D array (rows × columns) — for histogram slices,
    column 0 is the bin id and column 1 the count contribution.
    """

    rows: np.ndarray
    stripe: int
    total_stripes: int


class RowSampleEncoder(ProgressiveEncoder):
    """Round-robin stripes a row set into ``num_blocks`` equal blocks.

    ``bytes_per_row`` sets wire accounting; blocks are padded to the
    largest stripe so sizes stay uniform (§3.3).
    """

    def __init__(self, blocks_per_response: int, bytes_per_row: int = 16) -> None:
        if blocks_per_response < 1:
            raise ValueError("need at least one block per response")
        if bytes_per_row <= 0:
            raise ValueError("bytes_per_row must be positive")
        self.blocks_per_response = blocks_per_response
        self.bytes_per_row = bytes_per_row

    def num_blocks(self, request: int) -> int:
        return self.blocks_per_response

    def encode(self, request: int, data: Any) -> ProgressiveResponse:
        rows = np.atleast_2d(np.asarray(data))
        nb = self.blocks_per_response
        stripes = [rows[b::nb] for b in range(nb)]
        # Pad every block to the largest stripe's wire size.
        max_rows = max((len(s) for s in stripes), default=0)
        block_size = max(1, max_rows * self.bytes_per_row)
        payloads = [
            RowSamplePayload(rows=stripe, stripe=b, total_stripes=nb)
            for b, stripe in enumerate(stripes)
        ]
        return self._build(request, [block_size] * nb, payloads)


def decode_prefix(blocks: Sequence[Block]) -> np.ndarray:
    """Reassemble rows from a block prefix, scaled to full-result size.

    With ``k`` of ``Nb`` stripes, the union of stripes is a uniform
    sample of the rows; aggregates are unbiased after scaling counts by
    ``Nb / k``.  Returns the (possibly scaled) stacked rows.
    """
    if not blocks:
        raise ValueError("need at least one block to decode")
    payloads = [b.payload for b in blocks]
    if any(not isinstance(p, RowSamplePayload) for p in payloads):
        raise TypeError("blocks were not produced by RowSampleEncoder")
    total = payloads[0].total_stripes
    k = len(payloads)
    parts = [p.rows for p in payloads if len(p.rows)]
    if not parts:
        return np.empty((0, 2))
    stacked = np.vstack(parts).astype(float)
    if stacked.shape[1] >= 2 and k < total:
        stacked = stacked.copy()
        stacked[:, 1] *= total / k
    return stacked


def aggregate_histogram(rows: np.ndarray, num_bins: int) -> np.ndarray:
    """Sum (bin, count) rows into a dense histogram of ``num_bins``."""
    hist = np.zeros(num_bins)
    if len(rows):
        bins = rows[:, 0].astype(int)
        np.add.at(hist, bins, rows[:, 1])
    return hist


def estimation_error(
    blocks: Sequence[Block], full_rows: np.ndarray, num_bins: int
) -> float:
    """Relative L1 error of the decoded prefix vs the exact result.

    The measurable counterpart of the utility function for Falcon data:
    0 means the prefix reconstructs the histogram exactly.
    """
    approx = aggregate_histogram(decode_prefix(blocks), num_bins)
    exact = aggregate_histogram(np.atleast_2d(np.asarray(full_rows, dtype=float)), num_bins)
    denom = np.abs(exact).sum()
    if denom == 0:
        return 0.0
    return float(np.abs(approx - exact).sum() / denom)

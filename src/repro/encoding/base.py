"""Progressive encoder API (§3.3, §3.4).

An encoder turns an application response into a
:class:`~repro.core.blocks.ProgressiveResponse`: an ordered list of
fixed-size blocks where any prefix renders a lower-quality result.
Block sizes are kept uniform — the paper pads smaller blocks — because
uniform sizes are what make the client ring-buffer cache state a pure
function of the block sequence (and hence mirrorable by the server).

Encoders also declare how many blocks a given request will produce
(:meth:`ProgressiveEncoder.num_blocks`) so the scheduler can size its
utility-gain tables without fetching anything.
"""

from __future__ import annotations

from typing import Any

from repro.core.blocks import Block, ProgressiveResponse

__all__ = ["ProgressiveEncoder", "split_padded"]


def split_padded(total_bytes: int, block_size: int) -> list[int]:
    """Split ``total_bytes`` into equal padded block sizes.

    Returns ``ceil(total/block_size)`` entries, all equal to
    ``block_size`` — the final short block is padded up, as §3.3
    prescribes.  At least one block is always produced.
    """
    if total_bytes < 0:
        raise ValueError("total_bytes must be non-negative")
    if block_size <= 0:
        raise ValueError("block_size must be positive")
    count = max(1, -(-total_bytes // block_size))
    return [block_size] * count


class ProgressiveEncoder:
    """Base encoder: application data → progressive block list."""

    def num_blocks(self, request: int) -> int:
        """Block count for ``request`` (known without encoding)."""
        raise NotImplementedError

    def encode(self, request: int, data: Any) -> ProgressiveResponse:
        """Encode ``data`` into blocks for ``request``."""
        raise NotImplementedError

    def _build(
        self, request: int, sizes: list[int], payloads: list[Any]
    ) -> ProgressiveResponse:
        """Assemble a response from per-block sizes and payloads."""
        if len(sizes) != len(payloads):
            raise ValueError("sizes and payloads must align")
        blocks = tuple(
            Block(request=request, index=i, size_bytes=size, payload=payload)
            for i, (size, payload) in enumerate(zip(sizes, payloads))
        )
        return ProgressiveResponse(request=request, blocks=blocks)

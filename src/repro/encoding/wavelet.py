"""Zerotree-wavelet-style progressive encoder (§3.4, [71]).

The developer walkthrough suggests the application "switch to an
alternative progressive encoding altogether".  This encoder models an
embedded-wavelet code (EZW/SPIHT family): quality per byte decays
geometrically across refinement *passes*, so the matching utility
curve is exponential rather than the SSIM piecewise fit used for
progressive JPEG.

Blocks are still fixed-size wire units (the scheduler is agnostic to
the scheme); what changes is the pass structure attached to block
payloads and the :func:`wavelet_utility` curve that tells the
scheduler how front-loaded the quality is.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Any

from repro.core.blocks import ProgressiveResponse
from repro.core.utility import PiecewiseUtility

from .base import ProgressiveEncoder, split_padded

__all__ = ["WaveletPass", "WaveletEncoder", "wavelet_utility"]


@dataclass(frozen=True)
class WaveletPass:
    """Payload of one block: a refinement pass of the embedded code."""

    item_id: int
    pass_index: int
    total_passes: int
    significance: float  # quality contribution of this pass, in (0, 1]


class WaveletEncoder(ProgressiveEncoder):
    """Splits byte sizes into fixed blocks tagged with wavelet passes.

    ``decay`` is the per-pass quality ratio: pass ``k`` contributes
    ``decay^k`` as much as pass 0 (EZW-style bit-plane halving uses
    ``decay=0.5``).
    """

    def __init__(
        self,
        size_of,
        block_size_bytes: int = 50_000,
        decay: float = 0.5,
    ) -> None:
        if block_size_bytes <= 0:
            raise ValueError("block size must be positive")
        if not 0 < decay < 1:
            raise ValueError("decay must lie in (0, 1)")
        self.size_of = size_of
        self.block_size_bytes = block_size_bytes
        self.decay = decay

    def num_blocks(self, request: int) -> int:
        return len(split_padded(int(self.size_of(request)), self.block_size_bytes))

    def encode(self, request: int, data: Any = None) -> ProgressiveResponse:
        sizes = split_padded(int(self.size_of(request)), self.block_size_bytes)
        total = len(sizes)
        norm = sum(self.decay**k for k in range(total))
        payloads = [
            WaveletPass(
                item_id=request,
                pass_index=k,
                total_passes=total,
                significance=self.decay**k / norm,
            )
            for k in range(total)
        ]
        return self._build(request, sizes, payloads)


def wavelet_utility(num_points: int = 32, decay: float = 0.5) -> PiecewiseUtility:
    """The utility curve matching :class:`WaveletEncoder`'s pass decay.

    ``U(f) = (1 - decay^(f * P)) / (1 - decay^P)`` — the cumulative
    significance of the first ``f`` fraction of passes; strongly
    concave, steeper than the SSIM curve.
    """
    if num_points < 2:
        raise ValueError("need at least two curve points")
    if not 0 < decay < 1:
        raise ValueError("decay must lie in (0, 1)")
    passes = num_points - 1
    denom = 1.0 - decay**passes
    points = [
        (i / passes, (1.0 - decay**i) / denom) for i in range(num_points)
    ]
    # Pin the endpoints exactly against float error.
    points[0] = (0.0, 0.0)
    points[-1] = (1.0, 1.0)
    return PiecewiseUtility(points)

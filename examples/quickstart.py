"""Quickstart: a Khameleon session in ~40 lines.

Builds a small image-gallery application, generates a synthetic user
trace, replays it through a fully wired Khameleon session (client,
push scheduler, sender, simulated network), and prints the §6.1
metrics.

Run:  python examples/quickstart.py
"""

from repro.experiments.configs import DEFAULT_ENV
from repro.experiments.runner import run_khameleon
from repro.workloads.image_app import ImageExplorationApp
from repro.workloads.mouse import MouseTraceGenerator


def main() -> None:
    # 1. The application: a 15x15 thumbnail mosaic; hovering a thumbnail
    #    requests its 1.3-2 MB full-resolution image, progressively
    #    encoded into 50 KB blocks with the Fig. 3 SSIM utility curve.
    app = ImageExplorationApp(rows=15, cols=15)
    print(f"application: {app.num_requests} images, "
          f"{sum(app.num_blocks)} blocks total")

    # 2. A user: 30 seconds of saccade/dwell mouse exploration.
    trace = MouseTraceGenerator(app.layout, seed=1).generate(duration_s=30.0)
    print(f"trace: {trace.num_requests} requests over {trace.duration_s:.0f} s")

    # 3. Replay it through Khameleon under the paper's default
    #    environment (5.625 MB/s, 100 ms request latency, 50 MB cache).
    result = run_khameleon(app, trace, DEFAULT_ENV, predictor="kalman")

    s = result.summary
    print()
    print(f"cache hit rate : {100 * s.cache_hit_rate:6.1f} %")
    print(f"preempted      : {100 * s.preempted_rate:6.1f} %")
    print(f"mean latency   : {s.mean_latency_ms:6.1f} ms")
    print(f"mean utility   : {s.mean_utility:6.3f}")
    print(f"blocks pushed  : {result.blocks_pushed}"
          f"  (overpush {100 * (result.overpush or 0):.0f} %)")


if __name__ == "__main__":
    main()

"""The Falcon dashboard port (§6.4) — linked histograms over flights.

Six linked views over a synthetic flights table; hovering a chart
issues five real filtered-histogram queries against an in-memory
column store wrapped in PostgreSQL-like latency (0.8 s/query, 15
concurrent before degradation).  The example compares Falcon's
hand-written OnHover prefetch policy against the Kalman predictor that
Khameleon makes a one-line swap, and shows the progressively decoded
approximate histograms converging to the exact result.

Run:  python examples/falcon_dashboard.py
"""

import numpy as np

from repro.backends.database import SimulatedSQLDatabase
from repro.encoding.rowsample import RowSampleEncoder, decode_prefix, estimation_error
from repro.experiments.configs import DEFAULT_ENV
from repro.experiments.runner import run_falcon
from repro.metrics.report import format_table
from repro.workloads.falcon import FalconApp, FalconTraceGenerator


def compare_predictors() -> None:
    rows = []
    for nb in (1, 4):
        app = FalconApp(blocks_per_response=nb)
        trace = FalconTraceGenerator(app, seed=11).generate(duration_s=240.0)
        for predictor in ("onhover", "kalman"):
            result = run_falcon(
                app, trace, DEFAULT_ENV, predictor=predictor, db_scale="small"
            )
            d = result.summary.as_dict()
            rows.append(
                {
                    "blocks/resp": nb,
                    "predictor": predictor,
                    "hit_%": d["cache_hit_%"],
                    "latency_ms": d["latency_ms"],
                    "utility": d["utility"],
                    "queries": result.extras["queries_executed"],
                }
            )
    print(format_table(rows, "Falcon port: OnHover vs Kalman (mini Fig. 14)"))


def show_progressive_decoding() -> None:
    """Any block prefix decodes to an unbiased approximate histogram."""
    app = FalconApp(blocks_per_response=4)
    from repro.workloads.flights import FlightsDataset

    table = FlightsDataset(seed=42).small(scale=0.01)
    query = app.charts[0].query()  # Distance histogram, no filters
    exact = table.histogram_rows(query)

    encoder = RowSampleEncoder(blocks_per_response=4)
    response = encoder.encode(0, exact)
    print("\nProgressive decoding of the Distance histogram")
    print("(each stripe adds 1/4 of the bins; counts are scaled to")
    print(" estimate the full result, so early prefixes over/undershoot")
    print(" individual bins but converge to the exact histogram):")
    for k in range(1, response.num_blocks + 1):
        err = estimation_error(response.blocks[:k], exact, num_bins=query.bins)
        print(f"  {k}/{response.num_blocks} blocks -> relative L1 error {err:.3f}")


def main() -> None:
    compare_predictors()
    show_progressive_decoding()


if __name__ == "__main__":
    main()

"""Live serving: a scripted user against the real WebSocket port.

Every other example drives the stack through the discrete-event
:class:`~repro.sim.engine.Simulator`.  This one exercises the *other*
clock: it connects to ``python -m repro serve`` over a real socket,
replays a generated mouse trace in wall-clock time (the same
saccade/dwell model the experiments use), and rebuilds the paper's
§6.1 metrics from the client's side of the wire.

The number to watch is **prefetched hits**: requests whose first block
was already sitting on this client when the user asked for it.  Those
blocks crossed the network purely because the server's predictor and
scheduler decided to push them — the continuous-prefetch architecture
doing its job over a real port.

Run against a server you started yourself::

    PYTHONPATH=src python -m repro serve --port 8787 &
    PYTHONPATH=src python examples/live_serving.py --port 8787

or let the example boot (and tear down) its own server on an
ephemeral port — this is also the CI smoke invocation::

    PYTHONPATH=src python examples/live_serving.py --spawn-server --check
"""

from __future__ import annotations

import argparse
import asyncio
import os
import re
import subprocess
import sys
import time

from repro.predictors.layout import GridLayout
from repro.serve.client import AdmissionRejected, LiveClient
from repro.workloads.mouse import MouseTraceGenerator


async def run_session(
    host: str,
    port: int,
    duration_s: float,
    seed: int,
    linger_s: float,
    auto_reconnect: bool = False,
) -> tuple[object, int]:
    """Replay one mouse trace; returns (LiveReport, exit status)."""
    try:
        client = await LiveClient.connect(
            host, port, auto_reconnect=auto_reconnect
        )
    except AdmissionRejected as exc:
        print(f"rejected by admission control: {exc}")
        return exc.report, 1

    welcome = client.report.welcome
    layout = GridLayout(
        rows=welcome["rows"],
        cols=welcome["cols"],
        cell_width=welcome["cell_width"],
        cell_height=welcome["cell_height"],
    )
    trace = MouseTraceGenerator(layout, seed=seed).generate(duration_s=duration_s)
    print(
        f"session {welcome['session']}: {welcome['num_requests']} requests, "
        f"{layout.rows}x{layout.cols} grid, replaying "
        f"{len(trace.events)} events over {duration_s:.1f} s"
    )

    async with client:
        start = time.monotonic()
        for event in trace.events:
            delay = event.time_s - (time.monotonic() - start)
            if delay > 0:
                await asyncio.sleep(delay)
            # Across an injected disconnect the socket may be mid-splice;
            # sends fail soft and the replay keeps its wall-clock pace.
            try:
                client.send_event(event.x, event.y)
                if event.request is not None:
                    client.send_request(event.request)
                await client.drain()
            except (ConnectionError, OSError):
                pass
        # Let in-flight pushes land before asking for the bill.
        await asyncio.sleep(linger_s)
        report = await client.bye()
    if report.resumes:
        print(
            f"reconnected {report.resumes}x "
            f"(first at t={report.resumed_at[0]:.2f}s)"
        )
    return report, 0


def print_report(report) -> None:
    rows = [("blocks received", len(report.blocks)),
            ("bytes received", report.bytes_received),
            ("requests issued", len(report.requests)),
            ("prefetched hits", report.prefetched_hits),
            ("unrequested blocks", report.unrequested_blocks),
            ("reconnects", report.resumes)]
    width = max(len(k) for k, _ in rows)
    print("\n-- client wire accounting --")
    for key, value in rows:
        print(f"  {key:<{width}}  {value}")
    if report.requests:
        print("\n-- client-observed metrics (repro.metrics) --")
        for key, value in report.summary().as_dict().items():
            label = str(key)
            text = f"{value:.3f}" if isinstance(value, float) else str(value)
            print(f"  {label:<18} {text}")
    if report.server_stats:
        print("\n-- server-side session stats --")
        for key, value in sorted(report.server_stats.items()):
            if key == "type":
                continue
            text = f"{value:.3f}" if isinstance(value, float) else str(value)
            print(f"  {key:<18} {text}")


def spawn_server(args) -> tuple[subprocess.Popen, int]:
    """Boot ``python -m repro serve --port 0``; parse the bound port."""
    cmd = [
        sys.executable, "-m", "repro", "serve",
        "--host", args.host, "--port", "0",
        "--scale", args.scale,
        "--predictor", args.predictor,
        "--sampler", args.sampler,
    ]
    if args.disconnect_at > 0:
        # Server-side fault injection: abort this session's socket
        # mid-trace, and park it so the token reconnect can land.
        cmd += [
            "--chaos", f"disconnect:0@{args.disconnect_at:g}",
            "--resume-grace", "30",
        ]
    proc = subprocess.Popen(
        cmd,
        stdout=subprocess.PIPE,
        stderr=subprocess.STDOUT,
        text=True,
        env=os.environ.copy(),
    )
    deadline = time.monotonic() + 30.0
    assert proc.stdout is not None
    while True:
        if time.monotonic() > deadline:
            proc.terminate()
            raise RuntimeError("server did not report its port within 30 s")
        line = proc.stdout.readline()
        if not line:
            raise RuntimeError(f"server exited early (rc={proc.wait()})")
        print(f"[server] {line.rstrip()}")
        match = re.search(r"serving on ws://[^:]+:(\d+)/", line)
        if match:
            return proc, int(match.group(1))


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--host", default="127.0.0.1")
    parser.add_argument("--port", type=int, default=8787)
    parser.add_argument(
        "--duration", type=float, default=6.0,
        help="mouse-trace length in (wall-clock) seconds (default: 6)",
    )
    parser.add_argument("--seed", type=int, default=7, help="trace seed")
    parser.add_argument(
        "--linger", type=float, default=1.5,
        help="seconds to keep listening after the trace ends (default: 1.5)",
    )
    parser.add_argument(
        "--spawn-server", action="store_true",
        help="boot 'python -m repro serve' on an ephemeral port first",
    )
    parser.add_argument(
        "--check", action="store_true",
        help="exit nonzero unless blocks arrived and >=1 was prefetched "
        "(with --disconnect-at: also requires exactly one token "
        "reconnect and >=1 post-resume prefetched hit)",
    )
    parser.add_argument(
        "--disconnect-at", type=float, default=0.0, metavar="SECONDS",
        help="with --spawn-server: inject a server-side socket abort "
        "this long into the session and auto-reconnect through it "
        "(0 disables; default: 0)",
    )
    parser.add_argument("--scale", default="quick",
                        help="spawned server's grid scale (default: quick)")
    parser.add_argument("--predictor", default="kalman",
                        help="spawned server's predictor (default: kalman)")
    parser.add_argument("--sampler", default="vectorized",
                        help="spawned server's draw kernel (default: vectorized)")
    args = parser.parse_args(argv)

    if args.disconnect_at > 0 and not args.spawn_server:
        parser.error("--disconnect-at needs --spawn-server")
    proc = None
    port = args.port
    try:
        if args.spawn_server:
            proc, port = spawn_server(args)
        report, status = asyncio.run(
            run_session(
                args.host, port, args.duration, args.seed, args.linger,
                auto_reconnect=args.disconnect_at > 0,
            )
        )
    finally:
        if proc is not None:
            proc.terminate()
            try:
                proc.wait(timeout=10.0)
            except subprocess.TimeoutExpired:
                proc.kill()

    print_report(report)
    if args.check and status == 0:
        if not report.blocks:
            print("\nCHECK FAILED: no blocks were pushed")
            return 1
        if report.prefetched_hits < 1:
            print("\nCHECK FAILED: no request was answered by a prefetched block")
            return 1
        if args.disconnect_at > 0:
            if report.resumes != 1:
                print(f"\nCHECK FAILED: expected exactly 1 token reconnect, "
                      f"got {report.resumes}")
                return 1
            post = report.prefetched_hits_after(report.resumed_at[0])
            if post < 1:
                print("\nCHECK FAILED: no prefetched hit after the resume — "
                      "the reattached session's pipeline is not pushing")
                return 1
            print(f"\nCHECK OK: {len(report.blocks)} blocks pushed, "
                  f"{report.prefetched_hits} prefetched hits, "
                  f"resumed once with {post} post-resume hits")
            return 0
        print("\nCHECK OK: "
              f"{len(report.blocks)} blocks pushed, "
              f"{report.prefetched_hits} prefetched hits")
    return status


if __name__ == "__main__":
    sys.exit(main())

"""Writing a custom predictor with the §4 decomposition API.

Khameleon splits a predictor into a client component (events -> compact
state) and a server component (state -> request distribution):

    P_t(q | delta, e_t) = P_s(q | delta, s_t) . P_c(s_t | delta, e_t)

This example builds a *frequency-prior Markov* predictor — §3.4's
suggestion of weighting predictions "with a prior based on historical
image access frequency" — plugs it into a live session, and compares
it against the built-in Kalman filter.

Run:  python examples/custom_predictor.py
"""

from typing import Any, Optional, Sequence

import numpy as np

from repro.core.distribution import RequestDistribution
from repro.experiments.configs import DEFAULT_ENV, make_downlink, make_uplink
from repro.core.session import KhameleonSession, SessionConfig
from repro.experiments.runner import run_khameleon
from repro.metrics.collector import collect
from repro.predictors.base import ClientPredictor, Predictor, ServerPredictor
from repro.predictors.markov import MarkovModel
from repro.sim.engine import Simulator
from repro.predictors.base import MouseEvent
from repro.workloads.image_app import ImageExplorationApp
from repro.workloads.mouse import MouseTraceGenerator


class FrequencyMarkovClient(ClientPredictor):
    """Client half: ships the last request id (8 bytes of state)."""

    def __init__(self) -> None:
        self.last: Optional[int] = None

    def observe_request(self, time_s: float, request: int) -> None:
        self.last = request

    def state(self, time_s: float) -> Optional[int]:
        return self.last

    def state_size_bytes(self, state: Any) -> int:
        return 8


class FrequencyMarkovServer(ServerPredictor):
    """Server half: first-order transitions blended with a frequency prior.

    The server trains online from the stream of shipped states — no
    offline training set needed, exactly the 'anytime' contract.
    """

    def __init__(self, n: int, prior_weight: float = 0.3) -> None:
        self.model = MarkovModel(n)
        self.counts = np.ones(n)  # Laplace-smoothed access frequency
        self.prior_weight = prior_weight
        self.n = n
        self._last_seen: Optional[int] = None

    def decode(self, state: Optional[int], deltas_s: Sequence[float]) -> RequestDistribution:
        if state is None:
            return RequestDistribution.uniform(self.n, deltas_s)
        if state != self._last_seen:
            self.model.observe(int(state))
            self.counts[int(state)] += 1
            self._last_seen = state
        ids, probs, residual = self.model.transition_probs(int(state))
        prior = self.counts / self.counts.sum()
        dense = np.full(self.n, residual / self.n)
        dense[ids] += probs
        blended = (1 - self.prior_weight) * dense + self.prior_weight * prior
        blended /= blended.sum()
        return RequestDistribution.from_dense(
            np.tile(blended, (len(deltas_s), 1)), deltas_s
        )


def main() -> None:
    app = ImageExplorationApp(rows=12, cols=12)
    trace = MouseTraceGenerator(app.layout, seed=21).generate(duration_s=20.0)

    custom = Predictor(
        name="freq-markov",
        client=FrequencyMarkovClient(),
        server=FrequencyMarkovServer(app.num_requests),
    )

    # Wire the custom predictor into a session by hand (the same thing
    # run_khameleon does for the built-ins).
    sim = Simulator()
    session = KhameleonSession(
        sim=sim,
        backend=app.make_backend(sim, fetch_delay_s=DEFAULT_ENV.backend_delay_s),
        predictor=custom,
        utility=app.utility,
        num_blocks=app.num_blocks,
        downlink=make_downlink(sim, DEFAULT_ENV),
        uplink=make_uplink(sim, DEFAULT_ENV),
        config=SessionConfig(cache_bytes=DEFAULT_ENV.cache_bytes),
    )
    for event in trace.events:
        sim.schedule_at(event.time_s, session.client.observe, MouseEvent(event.x, event.y))
        if event.request is not None:
            sim.schedule_at(event.time_s, session.client.request, event.request)
    session.start()
    sim.run(until=trace.duration_s + 3.0)
    session.stop()
    custom_summary = collect(session.cache_manager.outcomes)

    kalman = run_khameleon(app, trace, DEFAULT_ENV, predictor="kalman")

    print(f"{'predictor':12s} {'hit_%':>6s} {'latency_ms':>11s} {'utility':>8s}")
    for name, s in (
        ("freq-markov", custom_summary),
        ("kalman", kalman.summary),
    ):
        print(
            f"{name:12s} {100 * s.cache_hit_rate:6.1f} "
            f"{s.mean_latency_ms:11.1f} {s.mean_utility:8.3f}"
        )
    print(
        "\nThe Kalman filter exploits mouse kinematics the Markov model"
        "\ncannot see; but the custom predictor needed ~40 lines and no"
        "\nchanges anywhere else in the stack."
    )


if __name__ == "__main__":
    main()

"""Fleet serving: many concurrent Khameleon sessions, one backend.

The paper evaluates a single client; a deployment serves many.  This
example runs eight users exploring the same image gallery at once,
sharing

* one backend — its response cache and in-flight fetch dedup work
  across sessions, so one user's prefetch warms every other user's
  future fetches, and
* one downlink — split by weighted fair queueing, so no session can
  starve another no matter how aggressively its sender pushes.

Run:  python examples/fleet_serving.py
"""

from repro.experiments.configs import DEFAULT_ENV, FleetEnvironment
from repro.experiments.runner import run_fleet
from repro.metrics import format_table
from repro.workloads.image_app import ImageExplorationApp
from repro.workloads.mouse import MouseTraceGenerator

NUM_SESSIONS = 8


def main() -> None:
    # 1. One shared application: a 15x15 mosaic of 1.3-2 MB images.
    app = ImageExplorationApp(rows=15, cols=15)
    print(f"application: {app.num_requests} images, one shared backend")

    # 2. Eight users, each with their own 20 s exploration trace.
    traces = [
        MouseTraceGenerator(app.layout, seed=100 + i).generate(duration_s=20.0)
        for i in range(NUM_SESSIONS)
    ]
    total = sum(t.num_requests for t in traces)
    print(f"fleet: {NUM_SESSIONS} sessions, {total} requests total")

    # 3. All of them contend for the paper's default environment:
    #    one 5.625 MB/s downlink, one backend, 100 ms request latency.
    fleet_env = FleetEnvironment(num_sessions=NUM_SESSIONS, env=DEFAULT_ENV)
    result = run_fleet(app, traces, fleet_env, predictor="kalman")

    print()
    print(format_table(result.rows(), title="per-session and fleet metrics"))

    d = result.diagnostics
    agg = result.summary.aggregate
    print()
    print(f"link fairness (Jain)   : {d['link_fairness']:.3f}")
    print(f"shared backend hits    : {100 * d['shared_hit_rate']:6.1f} %"
          f"  (cache + piggybacked in-flight fetches)")
    print(f"aggregate cache hits   : {100 * agg.cache_hit_rate:6.1f} %")
    print(f"aggregate p95 latency  : {agg.p95_latency_s * 1e3:6.1f} ms")


if __name__ == "__main__":
    main()

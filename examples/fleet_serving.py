"""Fleet serving: concurrent Khameleon sessions, one backend, churn.

The paper evaluates a single client; a deployment serves many — and its
users come and go.  This example runs the fleet twice over the same
image gallery:

1. **Static fleet** — eight users, all present for the whole run,
   sharing one backend (response cache + in-flight fetch dedup work
   across sessions) and one downlink (weighted fair queueing, so no
   session can starve another).

2. **Churning fleet** — twelve users arrive as a Poisson process, stay
   for a lognormal dwell, and depart mid-run; an admission cap rejects
   arrivals when the fleet is full.  Every session's predictor blends a
   *fleet-wide shared transition prior* ("shared-markov"): transitions
   observed by any user warm the crowd model, so a session that arrives
   cold predicts from the aggregate structure instead of from nothing —
   the SeLeP-style benefit of learning across users.

Run:  python examples/fleet_serving.py
"""

from repro.experiments.configs import DEFAULT_ENV, FleetEnvironment
from repro.experiments.runner import run_fleet
from repro.fleet import ArrivalConfig
from repro.metrics import format_table
from repro.workloads.image_app import ImageExplorationApp
from repro.workloads.mouse import MouseTraceGenerator

NUM_SESSIONS = 8
NUM_ARRIVALS = 12


def make_traces(app, count, duration_s):
    return [
        MouseTraceGenerator(app.layout, seed=100 + i).generate(duration_s=duration_s)
        for i in range(count)
    ]


def static_fleet(app) -> None:
    traces = make_traces(app, NUM_SESSIONS, duration_s=20.0)
    total = sum(t.num_requests for t in traces)
    print(f"static fleet: {NUM_SESSIONS} sessions, {total} requests total")

    # All of them contend for the paper's default environment:
    # one 5.625 MB/s downlink, one backend, 100 ms request latency.
    fleet_env = FleetEnvironment(num_sessions=NUM_SESSIONS, env=DEFAULT_ENV)
    result = run_fleet(app, traces, fleet_env, predictor="kalman")

    print()
    print(format_table(result.rows(), title="per-session and fleet metrics"))

    d = result.diagnostics
    agg = result.summary.aggregate
    print()
    print(f"link fairness (Jain)   : {d['link_fairness']:.3f}")
    print(f"shared backend hits    : {100 * d['shared_hit_rate']:6.1f} %"
          f"  (cache + piggybacked in-flight fetches)")
    print(f"aggregate cache hits   : {100 * agg.cache_hit_rate:6.1f} %")
    print(f"aggregate p95 latency  : {agg.p95_latency_s * 1e3:6.1f} ms")


def churning_fleet(app) -> None:
    traces = make_traces(app, NUM_ARRIVALS, duration_s=15.0)
    print(f"churning fleet: {NUM_ARRIVALS} planned arrivals")

    # Open-loop load: one arrival every ~2.5 s on average, ~10 s mean
    # dwell (utilization = rate x dwell = 4 expected live sessions),
    # at most 6 sessions admitted at once.
    fleet_env = FleetEnvironment(
        num_sessions=NUM_ARRIVALS,
        env=DEFAULT_ENV,
        arrival=ArrivalConfig(
            rate_per_s=0.4, mean_dwell_s=10.0, max_concurrent=6, seed=1
        ),
    )
    result = run_fleet(app, traces, fleet_env, predictor="shared-markov")

    print()
    print(format_table(result.rows(), title="per-session and fleet metrics"))
    print()
    print(format_table(result.cohort_rows(), title="arrival cohorts (5 s buckets)"))

    d = result.diagnostics
    churn = d["churn"]
    print()
    print(f"arrivals / admitted    : {churn['arrivals']} / {churn['admitted']}"
          f"  (rejected {churn['rejected']} at the door)")
    print(f"departed mid-run       : {churn['departed']}"
          f"  (peak {churn['peak_concurrent']} concurrent)")
    print(f"crowd prior            : {d['shared_prior']['transitions_observed']}"
          f" transitions pooled over {d['shared_prior']['rows_warmed']} rows")
    print(f"early hit rate         : {100 * d['early_hit_rate']:6.1f} %"
          f"  (first requests of each session, crowd-warmed)")


def main() -> None:
    # One shared application: a 15x15 mosaic of 1.3-2 MB images.
    app = ImageExplorationApp(rows=15, cols=15)
    print(f"application: {app.num_requests} images, one shared backend")
    print()
    static_fleet(app)
    print()
    churning_fleet(app)


if __name__ == "__main__":
    main()

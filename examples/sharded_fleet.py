"""Sharded fleet: one session population, W worker processes.

A single Python process tops out well below the paper's "hundreds of
concurrent users" ambition, so the fleet layer can partition its
sessions across worker processes: each worker runs a full Khameleon
stack (simulator, shared backend, fair-shared downlink, batched
prediction service) over its hash-assigned shard, and the coordinator

* routes sessions to shards by stable hash (``shard_of``),
* relays crowd-prior **CRDT deltas** between shards at a fixed cadence,
  so every shard's shared-Markov predictor learns from the whole
  crowd — not just its own sessions — without shared memory, and
* pools the per-shard metric snapshots into one fleet report.

This example runs the same 12-session fleet three ways and prints the
three (identical-shaped) reports:

1. unsharded — the in-process ``run_fleet`` baseline;
2. W=1 sharded — one worker process; the report is **bit-identical**
   to the baseline (the test suite enforces this), which is what makes
   the W>1 reports trustworthy;
3. W=3 sharded — three workers, CRDT prior sync every 0.5 s, with the
   per-shard CPU split shown at the end.

Run:  python examples/sharded_fleet.py
"""

from repro.experiments.configs import DEFAULT_ENV, FleetEnvironment
from repro.experiments.runner import run_fleet, run_fleet_sharded
from repro.fleet import assign_shards
from repro.metrics import format_table
from repro.workloads.image_app import ImageExplorationApp
from repro.workloads.mouse import MouseTraceGenerator

NUM_SESSIONS = 12
TRACE_DURATION_S = 4.0
SYNC_INTERVAL_S = 0.5


def main() -> None:
    app = ImageExplorationApp(rows=10, cols=10)
    traces = [
        MouseTraceGenerator(app.layout, seed=100 + i).generate(
            duration_s=TRACE_DURATION_S
        )
        for i in range(NUM_SESSIONS)
    ]
    fleet_env = FleetEnvironment(num_sessions=NUM_SESSIONS, env=DEFAULT_ENV)

    baseline = run_fleet(app, traces, fleet_env, predictor="shared-markov")
    print(format_table(baseline.rows(), title="unsharded (in-process)"))
    print()

    one = run_fleet_sharded(
        app, traces, fleet_env, num_shards=1,
        predictor="shared-markov", sync_interval_s=SYNC_INTERVAL_S,
    )
    same = one.rows() == baseline.rows()
    print(
        format_table(
            one.rows(),
            title=f"W=1 sharded (rows identical to baseline: {same})",
        )
    )
    print()

    many = run_fleet_sharded(
        app, traces, fleet_env, num_shards=3,
        predictor="shared-markov", sync_interval_s=SYNC_INTERVAL_S,
    )
    print(format_table(many.rows(), title="W=3 sharded (pooled report)"))
    print()

    sharding = many.diagnostics["sharding"]
    prior = many.diagnostics["shared_prior"]
    routes = assign_shards(range(NUM_SESSIONS), 3)
    print(f"session routing (crc32): {routes}")
    print(
        f"shards: {sharding['shards']}  sessions/shard: "
        f"{sharding['sessions_per_shard']}  sync rounds: "
        f"{sharding['sync_rounds']} (every {SYNC_INTERVAL_S} s)"
    )
    print(
        f"crowd prior: {prior['transitions_observed']} transitions pooled "
        f"({sharding['transitions_merged']} arrived as CRDT deltas)"
    )
    print(
        "per-shard CPU in the DES run: "
        + "  ".join(f"{c:.2f}s" for c in sharding["cpu_run_s"])
        + f"  (critical path {max(sharding['cpu_run_s']):.2f}s vs "
        f"{sum(sharding['cpu_run_s']):.2f}s total — the wall-clock win "
        "when each worker has its own core)"
    )


if __name__ == "__main__":
    # The workers are spawned processes: they re-import this module, so
    # everything above must be import-safe (no work at module top level).
    main()

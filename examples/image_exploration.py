"""Image exploration shoot-out: Khameleon vs classic prefetching.

Reproduces the §6.2 comparison in miniature: the same user trace is
replayed against Khameleon (Kalman predictor), the idealized ACC-1-5
prefetcher (perfect knowledge of the next five requests!), and the
no-prefetch Baseline, at three bandwidths.

Run:  python examples/image_exploration.py
"""

from repro.experiments.configs import DEFAULT_ENV
from repro.experiments.runner import run_image_system
from repro.metrics.report import format_table
from repro.workloads.image_app import ImageExplorationApp
from repro.workloads.mouse import MouseTraceGenerator

BANDWIDTHS_MBPS = (1.5, 5.625, 15.0)
SYSTEMS = ("khameleon", "acc-1-5", "baseline")


def main() -> None:
    app = ImageExplorationApp(rows=16, cols=16)
    trace = MouseTraceGenerator(app.layout, seed=7).generate(duration_s=20.0)
    print(f"{app.num_requests} images; trace of {trace.num_requests} requests\n")

    rows = []
    for bw in BANDWIDTHS_MBPS:
        env = DEFAULT_ENV.with_bandwidth(bw * 1e6)
        for system in SYSTEMS:
            result = run_image_system(system, app, trace, env)
            d = result.summary.as_dict()
            rows.append(
                {
                    "bandwidth_MB/s": bw,
                    "system": system,
                    "hit_%": d["cache_hit_%"],
                    "preempted_%": d["preempted_%"],
                    "latency_ms": d["latency_ms"],
                    "utility": d["utility"],
                }
            )
    print(format_table(rows, "Khameleon vs idealized prefetching (mini Fig. 6)"))
    print()
    print("Reading: ACC-1-5 *knows* the future, yet its full-response,"
          " pull-based transfers congest the link; Khameleon hedges with"
          " progressive blocks and stays interactive at every bandwidth.")


if __name__ == "__main__":
    main()

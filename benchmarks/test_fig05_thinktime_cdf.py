"""Fig. 5 — think-time CDFs of the generated trace corpora.

Paper: image-application think times concentrate between ~10 ms and a
few seconds (20 ms average in the authors' traces, bursts up to 32
requests/s); Falcon think times stretch from sub-second scrubs to
minutes-long reading pauses.
"""

from repro.experiments.figures import fig5_thinktime_cdf


def test_fig05_thinktime_cdf(benchmark, bench_scale, bench_report):
    rows = benchmark.pedantic(
        lambda: fig5_thinktime_cdf(scale=bench_scale), rounds=1, iterations=1
    )
    bench_report("fig05_thinktime_cdf", rows, "Fig. 5: think-time percentiles (ms)")

    image = {r["percentile"]: r["think_time_ms"] for r in rows if r["app"] == "image"}
    falcon = {r["percentile"]: r["think_time_ms"] for r in rows if r["app"] == "falcon"}
    # Image app: bursty — the 10th percentile is tens of milliseconds,
    # i.e., back-to-back requests at up to ~32/s.
    assert image[10] < 50.0
    # Image app: dwells give a long tail into the hundreds of ms.
    assert image[99] > 100.0
    # Falcon: much longer think times overall (reading + brushing).
    assert falcon[50] > image[50]
    assert falcon[90] > 1_000.0

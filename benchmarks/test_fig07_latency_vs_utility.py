"""Fig. 7 — response latency vs utility scatter, per condition.

Paper shape: baselines pin utility at 1.0 with latencies spread up to
tens of seconds; Khameleon stays under the 100 ms interactivity line
at partial-but-useful utility (upper-left of the scatter is better).
"""

from conftest import mean_of

from repro.experiments.figures import fig7_latency_vs_utility


def test_fig07_latency_vs_utility(benchmark, bench_scale, bench_report):
    rows = benchmark.pedantic(
        lambda: fig7_latency_vs_utility(scale=bench_scale), rounds=1, iterations=1
    )
    bench_report("fig07_latency_vs_utility", rows, "Fig. 7: latency vs utility")

    kham = [r for r in rows if r["system"] == "khameleon"]
    # The paper's headline: every Khameleon condition is interactive.
    assert all(r["latency_ms"] < 100.0 for r in kham)
    # Increasing bandwidth improves baseline latency but never to
    # Khameleon's level at the same condition.
    for row in rows:
        if row["system"] == "baseline":
            peer = next(
                k
                for k in kham
                if k["cache_mb"] == row["cache_mb"]
                and k["bandwidth_mbps"] == row["bandwidth_mbps"]
            )
            assert peer["latency_ms"] < row["latency_ms"]

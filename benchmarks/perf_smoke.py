#!/usr/bin/env python
"""Scheduler perf smoke: greedy batch scheduling + fleet tick cost.

Measures the hot paths the vectorized scheduling core owns:

* ``greedy_<n>x<C>`` — wall time of one full ``schedule_batch`` at
  {1k, 10k} requests x {100, 500} cache blocks (the Fig. 16
  configuration; the 10k x 500 cell is the acceptance metric), under
  the active ``--sampler``;
* ``greedy_draws_10000x500`` / ``greedy_draws_fenwick_10000x500`` —
  draw-loop-only time (``schedule_batch`` excluding the distribution
  install) for the active sampler and for the Fenwick sampler, so the
  O(log m) tail-draw speedup is gated directly;
* ``greedy_draws_head_10000x500`` /
  ``greedy_draws_head_fenwick_10000x500`` — the same draw-loop time on
  a short-slot workload (1 ms slots against the 4 paper horizons)
  where *every* draw lands before the last prediction horizon, so the
  horizon forest's head draws are gated directly against the
  vectorized kernel;
* ``fleet_tick_N<N>`` — mean wall time per 150 ms fleet prediction
  interval for a batched static fleet at N in {8, 32} sessions
  (prediction collect + stacked recompute + the scheduling it
  triggers);
* ``fleet_tick_churn_N<N>`` — the same per-tick cost under session
  churn (Poisson arrivals, lognormal dwells, admission cap), so the
  gate also covers the dynamic-fleet path; and
* ``fleet_tick_single_N1024`` / ``fleet_tick_sharded_N1024`` — CPU
  critical path per tick for a 1024-session fleet, unsharded vs
  partitioned across ``--shards`` worker processes (default 2, the CI
  smoke; the ROADMAP scaling table uses 4).  Both wrap the DES run
  itself with ``time.process_time`` so the comparison excludes fleet
  construction; the sharded figure is the slowest shard's CPU per
  tick — the wall-clock critical path when shards have their own
  cores; and
* ``fleet_tick_checkpoint_N256`` / ``fleet_tick_checkpoint_off_N256``
  — max-shard CPU per tick for a 256-session sharded fleet with
  cadence-1 shard checkpointing on vs off (the on-figure includes the
  capture CPU the workers self-report as ``checkpoint_cpu_s``), plus
  ``fleet_tick_checkpoint_overhead_x`` — the durability tax itself:
  (run CPU + capture CPU) / run CPU on the slowest shard, best of
  ``SHARD_REPEATS``.  Both terms of the ratio come from the *same*
  run, so machine contention cancels out of it (a cross-run on/off
  comparison can swing 30% on a time-sliced CI core).  ``--check``
  fails if the ratio exceeds ``CHECKPOINT_OVERHEAD_MAX`` (1.10 —
  checkpointing must cost <=10% per tick) independent of the
  committed baseline; and
* ``fleet_tick_markov_N32`` — predictor-*decode* work per tick for a
  32-session shared-Markov fleet (crowd prior pre-warmed to realistic
  row widths, cohorts of sessions walking a common tour): the wall
  time spent in ``decode_state`` / the stacked ``_batch_decode`` pass,
  which is the stage ``batched_decode`` owns.  Whole-tick time is
  dominated by the senders' refill scheduling, so this metric
  isolates the decode stage the same way ``greedy_draws_*`` isolates
  the draw loop.

The emitted JSON carries a ``config`` section (active sampler mode and
the fleet's decode-batching flag) so any regression is attributable to
the configuration that produced it; results and baselines are
per-sampler files (``BENCH_sched[_<sampler>].json``) so CI can gate
the vectorized and fenwick production paths side by side.  Raw
milliseconds are emitted for humans; the regression gate compares
*normalized* scores (metric / a fixed numpy probe measured on the same
machine) so the committed baseline transfers across hardware.

Usage::

    PYTHONPATH=src python benchmarks/perf_smoke.py                 # measure
    PYTHONPATH=src python benchmarks/perf_smoke.py --check         # CI gate
    PYTHONPATH=src python benchmarks/perf_smoke.py --update-baseline
    PYTHONPATH=src python benchmarks/perf_smoke.py --sampler fenwick --greedy-only
    PYTHONPATH=src python benchmarks/perf_smoke.py --alloc-probe

``--check`` exits non-zero when any normalized score exceeds
``--threshold`` (default 2.0) times the committed baseline, and prints
the full normalized delta table so the offending metric is visible in
CI logs.  ``--greedy-only`` skips the fleet benchmarks (used by the
second CI pass, which re-gates only the sampler-dependent metrics
under ``--sampler fenwick``).

``--alloc-probe`` reports the allocator-block cost of holding ten full
10x500-block schedules (``sys.getallocatedblocks`` delta around the
draw loop).  Measured on the dev machine when ``__slots__`` landed on
the hot data classes (``ScheduledBlock``, ``Block``,
``ProgressiveResponse``; the sim's ``EventHandle``/``PeriodicTask``
already had them):

    before: scheduled_blocks=5000 allocated_blocks=14374 (2.87/block),
            sys.getsizeof(ScheduledBlock) = 56 B + a 104 B __dict__
    after:  scheduled_blocks=5000 allocated_blocks=9216  (1.84/block),
            sys.getsizeof(ScheduledBlock) = 48 B, no __dict__
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from pathlib import Path

import numpy as np

RESULTS_DIR = Path(__file__).parent / "results"

GREEDY_CASES = [(1_000, 100), (1_000, 500), (10_000, 100), (10_000, 500)]
#: The acceptance cell for the draws-only sampler comparisons.
DRAWS_CASE = (10_000, 500)
#: Slot durations for the tail-dominated (Fig. 16) and head-dominated
#: draws-only workloads.  At 1 ms slots every offset in a 500-block
#: batch stays below the 0.5 s final horizon: all draws are head draws.
TAIL_SLOT_S = 0.01
HEAD_SLOT_S = 0.001
FLEET_SIZES = (8, 32)
FLEET_SIM_SECONDS = 2.5
#: Churn-mode gate shape: planned arrivals, open-loop rate, mean dwell.
CHURN_ARRIVALS = 16
CHURN_RATE_PER_S = 6.0
CHURN_DWELL_S = 1.0
CHURN_MAX_CONCURRENT = 8
#: Markov-decode gate shape: fleet size, grid, tour cohorts (sessions
#: per cohort share a trajectory — the crowd-row dedup the stacked
#: decode exploits), request cadence, and pre-warmed crowd row width.
MARKOV_SESSIONS = 32
MARKOV_GRID = 16
MARKOV_COHORTS = 8
MARKOV_REQ_EVERY_S = 0.08
MARKOV_PRIOR_WIDTH = 96
MARKOV_PRIOR_COUNT = 3
MARKOV_CACHE_BYTES = 3_200_000  # 64 blocks: keeps install cost modest
#: Sharded-fleet gate shape: a 1024-session population on a reduced
#: grid, short traces + drain so one run is a handful of 150 ms ticks,
#: and a sync cadence that fits a few CRDT delta rounds inside the
#: horizon.  Two repeats with min-of (the file's convention): on a
#: single-core CI box the time-sliced workers thrash each other's
#: caches, and min-of filters those contention spikes — the dedicated
#: core per worker the critical-path model assumes has no such spikes.
SHARD_SESSIONS = 1024
SHARD_GRID = 12
SHARD_TRACE_S = 0.4
SHARD_DRAIN_S = 0.4
SHARD_SYNC_INTERVAL_S = 0.25
SHARD_REPEATS = 2
#: Checkpoint-overhead gate shape: a smaller sharded population (the
#: gate is about per-tick *relative* cost, not scale) with cadence-1
#: captures — every sync round snapshots every session.
CKPT_SESSIONS = 256
#: Hard bound on the durability tax: capture CPU must stay within 10%
#: of run CPU on the slowest shard, measured within a single run.
CHECKPOINT_OVERHEAD_MAX = 1.10
REPEATS = 3


def result_path(sampler: str) -> Path:
    suffix = "" if sampler == "vectorized" else f"_{sampler}"
    return RESULTS_DIR / f"BENCH_sched{suffix}.json"


def baseline_path(sampler: str) -> Path:
    suffix = "" if sampler == "vectorized" else f"_{sampler}"
    return RESULTS_DIR / f"BENCH_sched_baseline{suffix}.json"


def machine_probe_ms() -> float:
    """Fixed numpy workload: normalizes scores across machines."""
    rng = np.random.default_rng(0)
    a = rng.random((512, 512))
    best = float("inf")
    for _ in range(5):
        start = time.perf_counter()
        for _ in range(4):
            b = np.cumsum(a, axis=0)
            c = b @ a[:, :64]
            np.sort(c, axis=0)
        best = min(best, time.perf_counter() - start)
    return best * 1e3


def _draws_case_setup():
    from repro.core.scheduler import GainTable
    from repro.core.utility import LinearUtility
    from repro.experiments.figures import _micro_distribution

    n, cache = DRAWS_CASE
    dist = _micro_distribution(n, seed=0)
    gains = GainTable(LinearUtility(), [50] * n)
    return n, cache, dist, gains


def bench_greedy(sampler: str) -> dict[str, float]:
    from repro.core.greedy import GreedyScheduler
    from repro.core.scheduler import GainTable
    from repro.core.utility import LinearUtility
    from repro.experiments.figures import _micro_distribution

    out = {}
    for n, cache in GREEDY_CASES:
        dist = _micro_distribution(n, seed=0)
        gains = GainTable(LinearUtility(), [50] * n)
        best = float("inf")
        best_draws = float("inf")
        for _ in range(REPEATS):
            scheduler = GreedyScheduler(
                gains, cache_blocks=cache, sampler=sampler, seed=0
            )
            start = time.perf_counter()
            scheduler.update_distribution(dist, slot_duration_s=TAIL_SLOT_S)
            mid = time.perf_counter()
            schedule = scheduler.schedule_batch()
            end = time.perf_counter()
            best = min(best, end - start)
            best_draws = min(best_draws, end - mid)
            assert len(schedule) == cache
        out[f"greedy_{n}x{cache}"] = best * 1e3
        if (n, cache) == DRAWS_CASE:
            out[f"greedy_draws_{n}x{cache}"] = best_draws * 1e3
    out[f"greedy_draws_head_{DRAWS_CASE[0]}x{DRAWS_CASE[1]}"] = (
        _draws_only(sampler, HEAD_SLOT_S) * 1e3
    )
    return out


def _draws_only(sampler: str, slot_s: float) -> float:
    """Best draw-loop time on the acceptance cell at ``slot_s`` slots."""
    from repro.core.greedy import GreedyScheduler

    n, cache, dist, gains = _draws_case_setup()
    best = float("inf")
    for _ in range(REPEATS):
        scheduler = GreedyScheduler(
            gains, cache_blocks=cache, sampler=sampler, seed=0
        )
        scheduler.update_distribution(dist, slot_duration_s=slot_s)
        start = time.perf_counter()
        schedule = scheduler.schedule_batch()
        best = min(best, time.perf_counter() - start)
        assert len(schedule) == cache
        if sampler == "fenwick":
            # The horizon forest must serve every draw; a fallback to
            # the O(m) kernel would silently invalidate the metric.
            assert scheduler.draw_counts["vectorized"] == 0
    return best


def bench_fenwick_draws() -> dict[str, float]:
    """Draw-loop time of the Fenwick sampler on the acceptance cell.

    Measured unconditionally (whatever ``--sampler`` is active) so the
    committed baseline always gates the O(log m) path — tail-dominated
    and head-dominated variants.
    """
    n, cache = DRAWS_CASE
    return {
        f"greedy_draws_fenwick_{n}x{cache}": _draws_only(
            "fenwick", TAIL_SLOT_S
        )
        * 1e3,
        f"greedy_draws_head_fenwick_{n}x{cache}": _draws_only(
            "fenwick", HEAD_SLOT_S
        )
        * 1e3,
    }


def _tick_cost(app, traces, env) -> float:
    from repro.experiments.runner import run_fleet

    best = float("inf")
    for _ in range(max(1, REPEATS - 1)):
        start = time.perf_counter()
        result = run_fleet(app, traces, env, predictor="kalman")
        wall = time.perf_counter() - start
        ticks = max(1, result.diagnostics["prediction"]["ticks"])
        best = min(best, wall / ticks)
    return best


def bench_fleet_tick(batched_decode: bool) -> dict[str, float]:
    from repro.experiments.configs import DEFAULT_ENV, FleetEnvironment
    from repro.fleet import ArrivalConfig
    from repro.workloads.image_app import ImageExplorationApp
    from repro.workloads.mouse import MouseTraceGenerator

    out = {}
    app = ImageExplorationApp(rows=12, cols=12)
    for num in FLEET_SIZES:
        traces = [
            MouseTraceGenerator(app.layout, seed=100 + i).generate(
                duration_s=FLEET_SIM_SECONDS
            )
            for i in range(num)
        ]
        env = FleetEnvironment(
            num_sessions=num, env=DEFAULT_ENV, batched_decode=batched_decode
        )
        out[f"fleet_tick_N{num}"] = _tick_cost(app, traces, env) * 1e3

    # Churn gate: the same tick cost while sessions arrive and depart
    # (ROADMAP: the perf gate previously covered only static fleets).
    traces = [
        MouseTraceGenerator(app.layout, seed=200 + i).generate(
            duration_s=FLEET_SIM_SECONDS
        )
        for i in range(CHURN_ARRIVALS)
    ]
    env = FleetEnvironment(
        num_sessions=CHURN_ARRIVALS,
        env=DEFAULT_ENV,
        batched_decode=batched_decode,
        arrival=ArrivalConfig(
            rate_per_s=CHURN_RATE_PER_S,
            mean_dwell_s=CHURN_DWELL_S,
            max_concurrent=CHURN_MAX_CONCURRENT,
            seed=5,
        ),
    )
    out[f"fleet_tick_churn_N{CHURN_ARRIVALS}"] = _tick_cost(app, traces, env) * 1e3
    out.update(bench_fleet_markov(batched_decode))
    return out


def _markov_fleet_fixtures():
    """App, cohort tour traces, and a pre-warmed crowd prior factory."""
    from repro.workloads.image_app import ImageExplorationApp
    from repro.workloads.trace import InteractionTrace, TraceEvent

    app = ImageExplorationApp(rows=MARKOV_GRID, cols=MARKOV_GRID)
    rng = np.random.default_rng(3)
    tour = rng.permutation(app.num_requests)
    n = len(tour)
    traces = []
    for i in range(MARKOV_SESSIONS):
        events = []
        t, j = 0.0, (i % MARKOV_COHORTS) * 11
        while t <= FLEET_SIM_SECONDS:
            r = int(tour[j % n])
            box = app.layout.bbox(r)
            events.append(
                TraceEvent(
                    t, (box.x0 + box.x1) / 2, (box.y0 + box.y1) / 2, request=r
                )
            )
            t += MARKOV_REQ_EVERY_S
            j += 1
        traces.append(InteractionTrace(events, name=f"tour{i}"))

    def make_prior():
        from repro.predictors.shared import SharedTransitionPrior

        prng = np.random.default_rng(11)
        prior = SharedTransitionPrior(app.num_requests)
        for prev in range(app.num_requests):
            succ = prng.choice(
                app.num_requests,
                size=min(MARKOV_PRIOR_WIDTH, app.num_requests),
                replace=False,
            )
            for s in succ:
                for _ in range(MARKOV_PRIOR_COUNT):
                    prior.observe(prev, int(s))
        return prior

    return app, traces, make_prior


def bench_fleet_markov(batched_decode: bool) -> dict[str, float]:
    """Predictor-decode work per tick for the shared-Markov fleet.

    Wraps ``decode_state`` and the service's stacked collect/decode
    hooks with wall-clock accumulation: the metric is exactly the
    stage ``batched_decode`` owns, on a workload whose cohort overlap
    and pre-warmed crowd rows resemble a long-lived fleet.
    """
    from dataclasses import replace

    from repro.core.server import KhameleonServer
    from repro.experiments.configs import DEFAULT_ENV, FleetEnvironment
    from repro.experiments.runner import run_fleet
    from repro.fleet.schedule_service import FleetScheduleService

    app, traces, make_prior = _markov_fleet_fixtures()
    env = FleetEnvironment(
        num_sessions=MARKOV_SESSIONS,
        env=replace(DEFAULT_ENV, cache_bytes=MARKOV_CACHE_BYTES),
        batched_decode=batched_decode,
    )
    acc = {"t": 0.0}
    targets = [
        (KhameleonServer, "decode_state"),
        (FleetScheduleService, "_batch_decode"),
        (FleetScheduleService, "_batch_states"),
    ]
    saved = [(c, name, getattr(c, name)) for c, name in targets]

    def timed(fn):
        def wrapper(self, *args):
            start = time.perf_counter()
            out = fn(self, *args)
            acc["t"] += time.perf_counter() - start
            return out

        return wrapper

    for c, name, fn in saved:
        setattr(c, name, timed(fn))
    try:
        best = float("inf")
        for _ in range(max(1, REPEATS - 1)):
            acc["t"] = 0.0
            result = run_fleet(
                app,
                traces,
                env,
                predictor="shared-markov",
                shared_prior=make_prior(),
            )
            ticks = max(1, result.diagnostics["prediction"]["ticks"])
            best = min(best, acc["t"] / ticks)
    finally:
        for c, name, fn in saved:
            setattr(c, name, fn)
    return {f"fleet_tick_markov_N{MARKOV_SESSIONS}": best * 1e3}


def bench_fleet_sharded(num_shards: int) -> dict[str, float]:
    """CPU critical path per tick at N=1024: single process vs sharded.

    Both metrics measure the *same* quantity — CPU seconds spent inside
    the DES run (``sim.run``), excluding fleet construction — per 150 ms
    prediction tick:

    * ``fleet_tick_single_N1024`` uses ``run_fleet``'s driver seam to
      wrap its ``sim.run`` calls with ``time.process_time``;
    * ``fleet_tick_sharded_N1024`` takes the *slowest shard's*
      ``cpu_run_s`` (each worker process self-times its run chunks the
      same way) over its per-shard tick count.  On a W-core machine the
      shards run concurrently, so the max-shard CPU *is* the wall-clock
      critical path; measuring CPU rather than wall keeps the metric
      honest on CI's single core, where the workers time-slice.

    Per-tick session throughput is then N / metric, and the scaling
    claim (ROADMAP) is the ratio single/sharded.
    """
    from repro.experiments.configs import DEFAULT_ENV, FleetEnvironment
    from repro.experiments.runner import run_fleet, run_fleet_sharded
    from repro.workloads.image_app import ImageExplorationApp
    from repro.workloads.mouse import MouseTraceGenerator

    app = ImageExplorationApp(rows=SHARD_GRID, cols=SHARD_GRID)
    traces = [
        MouseTraceGenerator(app.layout, seed=300 + i).generate(
            duration_s=SHARD_TRACE_S
        )
        for i in range(SHARD_SESSIONS)
    ]
    env = FleetEnvironment(num_sessions=SHARD_SESSIONS, env=DEFAULT_ENV)

    single_ms = float("inf")
    for _ in range(SHARD_REPEATS):
        acc = {"cpu": 0.0}

        def drive(sim, until, fleet, prior):
            start = time.process_time()
            sim.run(until=until)
            acc["cpu"] += time.process_time() - start

        result = run_fleet(
            app,
            traces,
            env,
            predictor="shared-markov",
            drain_s=SHARD_DRAIN_S,
            run_driver=drive,
        )
        ticks = max(1, result.diagnostics["prediction"]["ticks"])
        single_ms = min(single_ms, acc["cpu"] / ticks * 1e3)

    sharded_ms = float("inf")
    for _ in range(SHARD_REPEATS):
        result = run_fleet_sharded(
            app,
            traces,
            env,
            num_shards=num_shards,
            predictor="shared-markov",
            sync_interval_s=SHARD_SYNC_INTERVAL_S,
            drain_s=SHARD_DRAIN_S,
        )
        sharding = result.diagnostics["sharding"]
        # pool_snapshots sums tick counters across shards; every shard
        # runs the same global horizon, so per-shard ticks is the even
        # split.
        shard_ticks = max(
            1, result.diagnostics["prediction"]["ticks"] // num_shards
        )
        sharded_ms = min(
            sharded_ms, max(sharding["cpu_run_s"]) / shard_ticks * 1e3
        )
    return {
        "fleet_tick_single_N1024": single_ms,
        "fleet_tick_sharded_N1024": sharded_ms,
    }


def bench_fleet_checkpoint(num_shards: int) -> dict[str, float]:
    """Per-tick CPU of a sharded fleet with checkpointing on vs off.

    Both figures are the slowest shard's self-timed CPU per prediction
    tick on the same N=256 workload; the on-figure adds that shard's
    capture CPU (``checkpoint_cpu_s``) because snapshotting rides the
    barrier, not the DES run.  Cadence 1 (capture at *every* sync
    round) makes this the worst-case durability tax.
    """
    from repro.experiments.configs import DEFAULT_ENV, FleetEnvironment
    from repro.experiments.runner import run_fleet_sharded
    from repro.fleet import CheckpointConfig
    from repro.workloads.image_app import ImageExplorationApp
    from repro.workloads.mouse import MouseTraceGenerator

    app = ImageExplorationApp(rows=SHARD_GRID, cols=SHARD_GRID)
    traces = [
        MouseTraceGenerator(app.layout, seed=400 + i).generate(
            duration_s=SHARD_TRACE_S
        )
        for i in range(CKPT_SESSIONS)
    ]

    def per_tick(checkpoint) -> tuple[float, float]:
        env = FleetEnvironment(
            num_sessions=CKPT_SESSIONS, env=DEFAULT_ENV, checkpoint=checkpoint
        )
        best = float("inf")
        best_ratio = float("inf")
        for _ in range(SHARD_REPEATS):
            result = run_fleet_sharded(
                app,
                traces,
                env,
                num_shards=num_shards,
                predictor="shared-markov",
                sync_interval_s=SHARD_SYNC_INTERVAL_S,
                drain_s=SHARD_DRAIN_S,
            )
            sharding = result.diagnostics["sharding"]
            shard_ticks = max(
                1, result.diagnostics["prediction"]["ticks"] // num_shards
            )
            ckpt_cpu = sharding.get(
                "checkpoint_cpu_s", [0.0] * num_shards
            )
            if checkpoint is not None:
                assert sharding["checkpoints_taken"] > 0
            run_cpu, cap_cpu = max(
                zip(sharding["cpu_run_s"], ckpt_cpu),
                key=lambda pair: pair[0] + pair[1],
            )
            best = min(best, (run_cpu + cap_cpu) / shard_ticks * 1e3)
            # Within-run durability tax: capture CPU over run CPU on
            # the slowest shard.  Both terms come from the *same* run,
            # so CI-box contention cancels out of the ratio — unlike a
            # cross-run on/off comparison, which can swing 30% on a
            # time-sliced core.
            best_ratio = min(best_ratio, (run_cpu + cap_cpu) / run_cpu)
        return best, best_ratio

    on_ms, overhead = per_tick(CheckpointConfig(cadence_rounds=1))
    off_ms, _ = per_tick(None)
    return {
        f"fleet_tick_checkpoint_N{CKPT_SESSIONS}": on_ms,
        f"fleet_tick_checkpoint_off_N{CKPT_SESSIONS}": off_ms,
        "fleet_tick_checkpoint_overhead_x": overhead,
    }


def alloc_probe() -> dict[str, float]:
    """Allocator-block cost of holding ten full draws-case schedules."""
    import gc

    from repro.core.greedy import GreedyScheduler
    from repro.core.scheduler import GainTable, ScheduledBlock
    from repro.core.utility import LinearUtility
    from repro.experiments.figures import _micro_distribution

    n, cache = 2_000, 500
    dist = _micro_distribution(n, seed=0)
    gains = GainTable(LinearUtility(), [50] * n)
    sched = GreedyScheduler(gains, cache_blocks=cache, seed=0)
    sched.update_distribution(dist, slot_duration_s=TAIL_SLOT_S)
    sched.schedule_batch()  # warm caches
    gc.collect()
    before = sys.getallocatedblocks()
    held = [sched.schedule_batch(cache) for _ in range(10)]
    gc.collect()
    after = sys.getallocatedblocks()
    total = sum(len(b) for b in held)
    return {
        "scheduled_blocks": total,
        "allocated_blocks": after - before,
        "blocks_per_scheduled_block": (after - before) / total,
        "sizeof_scheduled_block": sys.getsizeof(ScheduledBlock(1, 2)),
    }


def measure(
    sampler: str = "vectorized",
    batched_decode: bool = True,
    greedy_only: bool = False,
    shards: int = 2,
) -> dict:
    probe = machine_probe_ms()
    metrics = bench_greedy(sampler)
    n, cache = DRAWS_CASE
    if sampler == "fenwick":
        # The active-sampler draws metrics already are the fenwick ones.
        metrics[f"greedy_draws_fenwick_{n}x{cache}"] = metrics[
            f"greedy_draws_{n}x{cache}"
        ]
        metrics[f"greedy_draws_head_fenwick_{n}x{cache}"] = metrics[
            f"greedy_draws_head_{n}x{cache}"
        ]
    else:
        metrics.update(bench_fenwick_draws())
    config = {
        "sampler": sampler,
        "batched_decode": batched_decode,
        "greedy_only": greedy_only,
    }
    if not greedy_only:
        metrics.update(bench_fleet_tick(batched_decode))
        metrics.update(bench_fleet_sharded(shards))
        metrics.update(bench_fleet_checkpoint(shards))
        # Recorded (and compared by --check) so a W=4 scaling run can
        # never be gated against the committed W=2 baseline.
        config["shards"] = shards
    return {
        "probe_ms": probe,
        "config": config,
        "metrics_ms": metrics,
        # Ratio metrics (``*_x``) are dimensionless; dividing them by
        # the machine probe would gate them on probe drift, not on the
        # quantity they measure.
        "normalized": {
            k: v / probe for k, v in metrics.items() if not k.endswith("_x")
        },
    }


def check(result: dict, baseline: dict, threshold: float) -> list[str]:
    failures = []
    base_config = baseline.get("config")
    if base_config is not None and base_config != result.get("config"):
        failures.append(
            f"config mismatch: run {result.get('config')} vs baseline "
            f"{base_config} (scores are not comparable)"
        )
    # Absolute durability-tax gate.  The ratio is (run CPU + capture
    # CPU) / run CPU on the slowest shard *of the same run*, so CI-box
    # contention hits numerator and denominator alike and cancels; it
    # holds regardless of the machine the baseline was committed on.
    overhead = result["metrics_ms"].get("fleet_tick_checkpoint_overhead_x")
    if overhead is not None and overhead > CHECKPOINT_OVERHEAD_MAX:
        failures.append(
            f"fleet_tick_checkpoint_overhead_x: {overhead:.3f}x > "
            f"{CHECKPOINT_OVERHEAD_MAX:.2f}x checkpoint overhead bound "
            f"(capture CPU vs run CPU on the slowest shard)"
        )
    for key, base_score in baseline["normalized"].items():
        score = result["normalized"].get(key)
        if score is None:
            failures.append(f"{key}: missing from this run")
        elif score > threshold * base_score:
            failures.append(
                f"{key}: {score:.3f} vs baseline {base_score:.3f} "
                f"(>{threshold:.1f}x regression)"
            )
    return failures


def delta_table(result: dict, baseline: dict) -> str:
    """Normalized run/baseline/ratio rows for every gated metric."""
    rows = [f"  {'metric':<34} {'run':>9} {'baseline':>9} {'ratio':>7}"]
    for key in sorted(baseline.get("normalized", {})):
        base_score = baseline["normalized"][key]
        score = result["normalized"].get(key)
        if score is None:
            rows.append(f"  {key:<34} {'—':>9} {base_score:>9.3f} {'—':>7}")
        else:
            ratio = score / base_score if base_score else float("inf")
            rows.append(
                f"  {key:<34} {score:>9.3f} {base_score:>9.3f} {ratio:>6.2f}x"
            )
    return "\n".join(rows)


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--check", action="store_true", help="fail on regression")
    parser.add_argument(
        "--update-baseline", action="store_true", help="rewrite the committed baseline"
    )
    parser.add_argument("--threshold", type=float, default=2.0)
    parser.add_argument(
        "--sampler",
        default="vectorized",
        choices=("reference", "vectorized", "fenwick"),
        help="greedy draw kernel for the greedy_* metrics",
    )
    parser.add_argument(
        "--no-batched-decode",
        action="store_true",
        help="disable the fleet's stacked predictor decode",
    )
    parser.add_argument(
        "--greedy-only",
        action="store_true",
        help="skip the fleet benchmarks (sampler-path CI pass)",
    )
    parser.add_argument(
        "--shards",
        type=int,
        default=2,
        help="worker count for fleet_tick_sharded_N1024 (default: 2, the "
        "CI smoke; use 4 for the ROADMAP scaling table)",
    )
    parser.add_argument(
        "--alloc-probe",
        action="store_true",
        help="report the hot-path allocation probe and exit",
    )
    args = parser.parse_args()

    if args.alloc_probe:
        stats = alloc_probe()
        for key, value in stats.items():
            print(f"  {key:<28} {value}")
        return 0

    result = measure(
        sampler=args.sampler,
        batched_decode=not args.no_batched_decode,
        greedy_only=args.greedy_only,
        shards=args.shards,
    )
    RESULTS_DIR.mkdir(exist_ok=True)
    out_path = result_path(args.sampler)
    out_path.write_text(json.dumps(result, indent=2, sort_keys=True) + "\n")

    print(f"machine probe: {result['probe_ms']:.2f} ms")
    print(f"config: {result['config']}")
    for key in sorted(result["metrics_ms"]):
        if key.endswith("_x"):
            print(f"  {key:<34} {result['metrics_ms'][key]:8.3f} x")
        else:
            print(
                f"  {key:<34} {result['metrics_ms'][key]:8.2f} ms   "
                f"(normalized {result['normalized'][key]:.3f})"
            )
    print(f"wrote {out_path}")

    base_path = baseline_path(args.sampler)
    if args.update_baseline:
        base_path.write_text(json.dumps(result, indent=2, sort_keys=True) + "\n")
        print(f"wrote {base_path}")

    if args.check:
        if not base_path.exists():
            print(f"no baseline at {base_path}; run with --update-baseline first")
            return 2
        baseline = json.loads(base_path.read_text())
        failures = check(result, baseline, args.threshold)
        if failures:
            print("PERF REGRESSION:")
            for line in failures:
                print(f"  {line}")
            print("normalized scores vs baseline:")
            print(delta_table(result, baseline))
            return 1
        print(f"perf check OK (threshold {args.threshold:.1f}x)")
    return 0


if __name__ == "__main__":
    sys.exit(main())

#!/usr/bin/env python
"""Scheduler perf smoke: greedy batch scheduling + fleet tick cost.

Measures the two hot paths the vectorized scheduling core owns:

* ``greedy_<n>x<C>`` — wall time of one full ``schedule_batch`` at
  {1k, 10k} requests x {100, 500} cache blocks (the Fig. 16
  configuration; the 10k x 500 cell is the acceptance metric), and
* ``fleet_tick_N<N>`` — mean wall time per 150 ms fleet prediction
  interval for a batched static fleet at N in {8, 32} sessions
  (prediction collect + stacked recompute + the scheduling it
  triggers).

Raw milliseconds are emitted for humans; the regression gate compares
*normalized* scores (metric / a fixed numpy probe measured on the same
machine) so the committed baseline transfers across hardware.

Usage::

    PYTHONPATH=src python benchmarks/perf_smoke.py                 # measure
    PYTHONPATH=src python benchmarks/perf_smoke.py --check         # CI gate
    PYTHONPATH=src python benchmarks/perf_smoke.py --update-baseline

``--check`` exits non-zero when any normalized score exceeds
``--threshold`` (default 2.0) times the committed baseline
(``benchmarks/results/BENCH_sched_baseline.json``).  Results land in
``benchmarks/results/BENCH_sched.json``.
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from pathlib import Path

import numpy as np

RESULTS_DIR = Path(__file__).parent / "results"
RESULT_PATH = RESULTS_DIR / "BENCH_sched.json"
BASELINE_PATH = RESULTS_DIR / "BENCH_sched_baseline.json"

GREEDY_CASES = [(1_000, 100), (1_000, 500), (10_000, 100), (10_000, 500)]
FLEET_SIZES = (8, 32)
FLEET_SIM_SECONDS = 2.5
REPEATS = 3


def machine_probe_ms() -> float:
    """Fixed numpy workload: normalizes scores across machines."""
    rng = np.random.default_rng(0)
    a = rng.random((512, 512))
    best = float("inf")
    for _ in range(5):
        start = time.perf_counter()
        for _ in range(4):
            b = np.cumsum(a, axis=0)
            c = b @ a[:, :64]
            np.sort(c, axis=0)
        best = min(best, time.perf_counter() - start)
    return best * 1e3


def bench_greedy() -> dict[str, float]:
    from repro.core.distribution import RequestDistribution
    from repro.core.greedy import GreedyScheduler
    from repro.core.scheduler import GainTable
    from repro.core.utility import LinearUtility
    from repro.experiments.figures import _micro_distribution

    out = {}
    for n, cache in GREEDY_CASES:
        dist = _micro_distribution(n, seed=0)
        gains = GainTable(LinearUtility(), [50] * n)
        best = float("inf")
        for _ in range(REPEATS):
            scheduler = GreedyScheduler(gains, cache_blocks=cache, seed=0)
            start = time.perf_counter()
            scheduler.update_distribution(dist, slot_duration_s=0.01)
            schedule = scheduler.schedule_batch()
            best = min(best, time.perf_counter() - start)
            assert len(schedule) == cache
        out[f"greedy_{n}x{cache}"] = best * 1e3
    return out


def bench_fleet_tick() -> dict[str, float]:
    from repro.experiments.configs import DEFAULT_ENV, FleetEnvironment
    from repro.experiments.runner import run_fleet
    from repro.workloads.image_app import ImageExplorationApp
    from repro.workloads.mouse import MouseTraceGenerator

    out = {}
    app = ImageExplorationApp(rows=12, cols=12)
    for num in FLEET_SIZES:
        traces = [
            MouseTraceGenerator(app.layout, seed=100 + i).generate(
                duration_s=FLEET_SIM_SECONDS
            )
            for i in range(num)
        ]
        env = FleetEnvironment(num_sessions=num, env=DEFAULT_ENV)
        best = float("inf")
        for _ in range(max(1, REPEATS - 1)):
            start = time.perf_counter()
            result = run_fleet(app, traces, env, predictor="kalman")
            wall = time.perf_counter() - start
            ticks = max(1, result.diagnostics["prediction"]["ticks"])
            best = min(best, wall / ticks)
        out[f"fleet_tick_N{num}"] = best * 1e3
    return out


def measure() -> dict:
    probe = machine_probe_ms()
    metrics = {**bench_greedy(), **bench_fleet_tick()}
    return {
        "probe_ms": probe,
        "metrics_ms": metrics,
        "normalized": {k: v / probe for k, v in metrics.items()},
    }


def check(result: dict, baseline: dict, threshold: float) -> list[str]:
    failures = []
    for key, base_score in baseline["normalized"].items():
        score = result["normalized"].get(key)
        if score is None:
            failures.append(f"{key}: missing from this run")
        elif score > threshold * base_score:
            failures.append(
                f"{key}: {score:.3f} vs baseline {base_score:.3f} "
                f"(>{threshold:.1f}x regression)"
            )
    return failures


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--check", action="store_true", help="fail on regression")
    parser.add_argument(
        "--update-baseline", action="store_true", help="rewrite the committed baseline"
    )
    parser.add_argument("--threshold", type=float, default=2.0)
    args = parser.parse_args()

    result = measure()
    RESULTS_DIR.mkdir(exist_ok=True)
    RESULT_PATH.write_text(json.dumps(result, indent=2, sort_keys=True) + "\n")

    print(f"machine probe: {result['probe_ms']:.2f} ms")
    for key in sorted(result["metrics_ms"]):
        print(
            f"  {key:<18} {result['metrics_ms'][key]:8.2f} ms   "
            f"(normalized {result['normalized'][key]:.3f})"
        )
    print(f"wrote {RESULT_PATH}")

    if args.update_baseline:
        BASELINE_PATH.write_text(json.dumps(result, indent=2, sort_keys=True) + "\n")
        print(f"wrote {BASELINE_PATH}")

    if args.check:
        if not BASELINE_PATH.exists():
            print(f"no baseline at {BASELINE_PATH}; run with --update-baseline first")
            return 2
        baseline = json.loads(BASELINE_PATH.read_text())
        failures = check(result, baseline, args.threshold)
        if failures:
            print("PERF REGRESSION:")
            for line in failures:
                print(f"  {line}")
            return 1
        print(f"perf check OK (threshold {args.threshold:.1f}x)")
    return 0


if __name__ == "__main__":
    sys.exit(main())

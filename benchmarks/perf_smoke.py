#!/usr/bin/env python
"""Scheduler perf smoke: greedy batch scheduling + fleet tick cost.

Measures the hot paths the vectorized scheduling core owns:

* ``greedy_<n>x<C>`` — wall time of one full ``schedule_batch`` at
  {1k, 10k} requests x {100, 500} cache blocks (the Fig. 16
  configuration; the 10k x 500 cell is the acceptance metric), under
  the active ``--sampler``;
* ``greedy_draws_10000x500`` / ``greedy_draws_fenwick_10000x500`` —
  draw-loop-only time (``schedule_batch`` excluding the distribution
  install) for the active sampler and for the Fenwick sampler, so the
  O(log m) tail-draw speedup is gated directly;
* ``fleet_tick_N<N>`` — mean wall time per 150 ms fleet prediction
  interval for a batched static fleet at N in {8, 32} sessions
  (prediction collect + stacked recompute + the scheduling it
  triggers); and
* ``fleet_tick_churn_N<N>`` — the same per-tick cost under session
  churn (Poisson arrivals, lognormal dwells, admission cap), so the
  gate also covers the dynamic-fleet path.

The emitted JSON carries a ``config`` section (active sampler mode and
the fleet's decode-batching flag) so any regression is attributable to
the configuration that produced it.  Raw milliseconds are emitted for
humans; the regression gate compares *normalized* scores (metric / a
fixed numpy probe measured on the same machine) so the committed
baseline transfers across hardware.

Usage::

    PYTHONPATH=src python benchmarks/perf_smoke.py                 # measure
    PYTHONPATH=src python benchmarks/perf_smoke.py --check         # CI gate
    PYTHONPATH=src python benchmarks/perf_smoke.py --update-baseline

``--check`` exits non-zero when any normalized score exceeds
``--threshold`` (default 2.0) times the committed baseline
(``benchmarks/results/BENCH_sched_baseline.json``).  Results land in
``benchmarks/results/BENCH_sched.json``.
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from pathlib import Path

import numpy as np

RESULTS_DIR = Path(__file__).parent / "results"
RESULT_PATH = RESULTS_DIR / "BENCH_sched.json"
BASELINE_PATH = RESULTS_DIR / "BENCH_sched_baseline.json"

GREEDY_CASES = [(1_000, 100), (1_000, 500), (10_000, 100), (10_000, 500)]
#: The acceptance cell for the draws-only sampler comparison.
DRAWS_CASE = (10_000, 500)
FLEET_SIZES = (8, 32)
FLEET_SIM_SECONDS = 2.5
#: Churn-mode gate shape: planned arrivals, open-loop rate, mean dwell.
CHURN_ARRIVALS = 16
CHURN_RATE_PER_S = 6.0
CHURN_DWELL_S = 1.0
CHURN_MAX_CONCURRENT = 8
REPEATS = 3


def machine_probe_ms() -> float:
    """Fixed numpy workload: normalizes scores across machines."""
    rng = np.random.default_rng(0)
    a = rng.random((512, 512))
    best = float("inf")
    for _ in range(5):
        start = time.perf_counter()
        for _ in range(4):
            b = np.cumsum(a, axis=0)
            c = b @ a[:, :64]
            np.sort(c, axis=0)
        best = min(best, time.perf_counter() - start)
    return best * 1e3


def bench_greedy(sampler: str) -> dict[str, float]:
    from repro.core.greedy import GreedyScheduler
    from repro.core.scheduler import GainTable
    from repro.core.utility import LinearUtility
    from repro.experiments.figures import _micro_distribution

    out = {}
    for n, cache in GREEDY_CASES:
        dist = _micro_distribution(n, seed=0)
        gains = GainTable(LinearUtility(), [50] * n)
        best = float("inf")
        best_draws = float("inf")
        for _ in range(REPEATS):
            scheduler = GreedyScheduler(
                gains, cache_blocks=cache, sampler=sampler, seed=0
            )
            start = time.perf_counter()
            scheduler.update_distribution(dist, slot_duration_s=0.01)
            mid = time.perf_counter()
            schedule = scheduler.schedule_batch()
            end = time.perf_counter()
            best = min(best, end - start)
            best_draws = min(best_draws, end - mid)
            assert len(schedule) == cache
        out[f"greedy_{n}x{cache}"] = best * 1e3
        if (n, cache) == DRAWS_CASE:
            out[f"greedy_draws_{n}x{cache}"] = best_draws * 1e3
    return out


def bench_fenwick_draws() -> dict[str, float]:
    """Draw-loop time of the Fenwick sampler on the acceptance cell.

    Measured unconditionally (whatever ``--sampler`` is active) so the
    committed baseline always gates the O(log m) path.
    """
    from repro.core.greedy import GreedyScheduler
    from repro.core.scheduler import GainTable
    from repro.core.utility import LinearUtility
    from repro.experiments.figures import _micro_distribution

    n, cache = DRAWS_CASE
    dist = _micro_distribution(n, seed=0)
    gains = GainTable(LinearUtility(), [50] * n)
    best = float("inf")
    for _ in range(REPEATS):
        scheduler = GreedyScheduler(
            gains, cache_blocks=cache, sampler="fenwick", seed=0
        )
        scheduler.update_distribution(dist, slot_duration_s=0.01)
        start = time.perf_counter()
        schedule = scheduler.schedule_batch()
        best = min(best, time.perf_counter() - start)
        assert len(schedule) == cache
    return {f"greedy_draws_fenwick_{n}x{cache}": best * 1e3}


def _tick_cost(app, traces, env) -> float:
    from repro.experiments.runner import run_fleet

    best = float("inf")
    for _ in range(max(1, REPEATS - 1)):
        start = time.perf_counter()
        result = run_fleet(app, traces, env, predictor="kalman")
        wall = time.perf_counter() - start
        ticks = max(1, result.diagnostics["prediction"]["ticks"])
        best = min(best, wall / ticks)
    return best


def bench_fleet_tick(batched_decode: bool) -> dict[str, float]:
    from repro.experiments.configs import DEFAULT_ENV, FleetEnvironment
    from repro.fleet import ArrivalConfig
    from repro.workloads.image_app import ImageExplorationApp
    from repro.workloads.mouse import MouseTraceGenerator

    out = {}
    app = ImageExplorationApp(rows=12, cols=12)
    for num in FLEET_SIZES:
        traces = [
            MouseTraceGenerator(app.layout, seed=100 + i).generate(
                duration_s=FLEET_SIM_SECONDS
            )
            for i in range(num)
        ]
        env = FleetEnvironment(
            num_sessions=num, env=DEFAULT_ENV, batched_decode=batched_decode
        )
        out[f"fleet_tick_N{num}"] = _tick_cost(app, traces, env) * 1e3

    # Churn gate: the same tick cost while sessions arrive and depart
    # (ROADMAP: the perf gate previously covered only static fleets).
    traces = [
        MouseTraceGenerator(app.layout, seed=200 + i).generate(
            duration_s=FLEET_SIM_SECONDS
        )
        for i in range(CHURN_ARRIVALS)
    ]
    env = FleetEnvironment(
        num_sessions=CHURN_ARRIVALS,
        env=DEFAULT_ENV,
        batched_decode=batched_decode,
        arrival=ArrivalConfig(
            rate_per_s=CHURN_RATE_PER_S,
            mean_dwell_s=CHURN_DWELL_S,
            max_concurrent=CHURN_MAX_CONCURRENT,
            seed=5,
        ),
    )
    out[f"fleet_tick_churn_N{CHURN_ARRIVALS}"] = _tick_cost(app, traces, env) * 1e3
    return out


def measure(sampler: str = "vectorized", batched_decode: bool = True) -> dict:
    probe = machine_probe_ms()
    metrics = bench_greedy(sampler)
    n, cache = DRAWS_CASE
    if sampler == "fenwick":
        # The active-sampler draws metric already is the fenwick one.
        metrics[f"greedy_draws_fenwick_{n}x{cache}"] = metrics[
            f"greedy_draws_{n}x{cache}"
        ]
    else:
        metrics.update(bench_fenwick_draws())
    metrics.update(bench_fleet_tick(batched_decode))
    return {
        "probe_ms": probe,
        "config": {"sampler": sampler, "batched_decode": batched_decode},
        "metrics_ms": metrics,
        "normalized": {k: v / probe for k, v in metrics.items()},
    }


def check(result: dict, baseline: dict, threshold: float) -> list[str]:
    failures = []
    base_config = baseline.get("config")
    if base_config is not None and base_config != result.get("config"):
        failures.append(
            f"config mismatch: run {result.get('config')} vs baseline "
            f"{base_config} (scores are not comparable)"
        )
    for key, base_score in baseline["normalized"].items():
        score = result["normalized"].get(key)
        if score is None:
            failures.append(f"{key}: missing from this run")
        elif score > threshold * base_score:
            failures.append(
                f"{key}: {score:.3f} vs baseline {base_score:.3f} "
                f"(>{threshold:.1f}x regression)"
            )
    return failures


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--check", action="store_true", help="fail on regression")
    parser.add_argument(
        "--update-baseline", action="store_true", help="rewrite the committed baseline"
    )
    parser.add_argument("--threshold", type=float, default=2.0)
    parser.add_argument(
        "--sampler",
        default="vectorized",
        choices=("reference", "vectorized", "fenwick"),
        help="greedy draw kernel for the greedy_* metrics",
    )
    parser.add_argument(
        "--no-batched-decode",
        action="store_true",
        help="disable the fleet's stacked Kalman predict/decode",
    )
    args = parser.parse_args()

    result = measure(
        sampler=args.sampler, batched_decode=not args.no_batched_decode
    )
    RESULTS_DIR.mkdir(exist_ok=True)
    RESULT_PATH.write_text(json.dumps(result, indent=2, sort_keys=True) + "\n")

    print(f"machine probe: {result['probe_ms']:.2f} ms")
    print(f"config: {result['config']}")
    for key in sorted(result["metrics_ms"]):
        print(
            f"  {key:<18} {result['metrics_ms'][key]:8.2f} ms   "
            f"(normalized {result['normalized'][key]:.3f})"
        )
    print(f"wrote {RESULT_PATH}")

    if args.update_baseline:
        BASELINE_PATH.write_text(json.dumps(result, indent=2, sort_keys=True) + "\n")
        print(f"wrote {BASELINE_PATH}")

    if args.check:
        if not BASELINE_PATH.exists():
            print(f"no baseline at {BASELINE_PATH}; run with --update-baseline first")
            return 2
        baseline = json.loads(BASELINE_PATH.read_text())
        failures = check(result, baseline, args.threshold)
        if failures:
            print("PERF REGRESSION:")
            for line in failures:
                print(f"  {line}")
            return 1
        print(f"perf check OK (threshold {args.threshold:.1f}x)")
    return 0


if __name__ == "__main__":
    sys.exit(main())

"""Warm-start recovery — a saved crowd prior revives a cold fleet.

The sharded-fleet ISSUE's operational story: a fleet restarts (deploy,
crash, scale-out) and every session arrives cold.  With the crowd
prior persisted (``prior_out``) before the restart and loaded back
(``shared_prior``) after, arriving sessions predict from the previous
fleet's aggregate transition structure instead of relearning it — the
early-window hit rate (each session's first ``k`` requests, the §5.2
cold-start window) should recover toward the long-lived fleet's level.

Three churn fleets run over one deterministic arrival plan:

* ``seed``   — a first-generation fleet that builds the prior, which is
  saved to disk exactly as ``repro fleet --prior-out`` would;
* ``cold``   — the restarted fleet with no prior: the baseline;
* ``warm``   — the restarted fleet loading the saved prior; and
* ``warm-sharded`` — the same warm restart through the W=2 sharded
  runner, proving the warm-start path survives partitioning (every
  shard seeds from the same file, deltas exclude the warm-start mass).
"""

from repro.experiments.configs import DEFAULT_ENV, FleetEnvironment
from repro.experiments.runner import run_fleet, run_fleet_sharded
from repro.fleet import ArrivalConfig
from repro.predictors.shared import SharedTransitionPrior
from repro.workloads.image_app import ImageExplorationApp
from repro.workloads.mouse import MouseTraceGenerator

NUM_ARRIVALS = 10
ARRIVAL_RATE_PER_S = 0.5
MEAN_DWELL_S = 6.0
MAX_CONCURRENT = 4
TRACE_DURATION_S = 8.0
EARLY_K = 5


def fixtures(bench_scale):
    app = ImageExplorationApp(rows=bench_scale.rows, cols=bench_scale.cols)
    traces = [
        MouseTraceGenerator(app.layout, seed=100 + i).generate(
            duration_s=TRACE_DURATION_S
        )
        for i in range(NUM_ARRIVALS)
    ]
    fleet_env = FleetEnvironment(
        num_sessions=NUM_ARRIVALS,
        env=DEFAULT_ENV,
        arrival=ArrivalConfig(
            rate_per_s=ARRIVAL_RATE_PER_S,
            mean_dwell_s=MEAN_DWELL_S,
            max_concurrent=MAX_CONCURRENT,
            seed=7,
        ),
    )
    return app, traces, fleet_env


def test_fleet_warmstart(benchmark, bench_scale, bench_report, tmp_path):
    app, traces, fleet_env = fixtures(bench_scale)
    prior_path = tmp_path / "crowd_prior.npz"

    def run_all():
        seed_prior = SharedTransitionPrior(app.num_requests)
        seed = run_fleet(
            app, traces, fleet_env, predictor="shared-markov",
            early_k=EARLY_K, shared_prior=seed_prior,
        )
        seed_prior.save(prior_path)
        cold = run_fleet(
            app, traces, fleet_env, predictor="shared-markov", early_k=EARLY_K
        )
        warm = run_fleet(
            app, traces, fleet_env, predictor="shared-markov",
            early_k=EARLY_K, shared_prior=str(prior_path),
        )
        warm_sharded = run_fleet_sharded(
            app, traces, fleet_env, num_shards=2, predictor="shared-markov",
            sync_interval_s=1.0, early_k=EARLY_K, shared_prior=str(prior_path),
        )
        return seed, cold, warm, warm_sharded

    seed, cold, warm, warm_sharded = benchmark.pedantic(
        run_all, rounds=1, iterations=1
    )

    rows = [
        r.aggregate_row()
        for r in (seed, cold, warm, warm_sharded)
    ]
    for row, name in zip(rows, ("seed", "cold", "warm", "warm-sharded")):
        row["system"] = name
    bench_report(
        "fleet_warmstart",
        rows,
        f"Warm start: early-window (first {EARLY_K} requests) hit-rate "
        "recovery from a saved crowd prior",
    )

    # The prior round-trips through disk with its full mass.
    saved = SharedTransitionPrior.load(prior_path, n=app.num_requests)
    assert (
        saved.transitions_observed
        == seed.diagnostics["shared_prior"]["transitions_observed"]
    )
    assert saved.transitions_observed > 0

    # Identical deterministic arrival plans: admission outcomes match,
    # so the prior is the only variable across the three restarts.
    for r in (warm, warm_sharded):
        assert (
            r.diagnostics["churn"]["admitted"]
            == cold.diagnostics["churn"]["admitted"]
        )

    # The warm restart's cold-start window recovers at least to the
    # cold baseline (the seed traces are replayed, so the loaded prior
    # has seen every transition the restarted sessions will make; a
    # small tolerance absorbs scheduling noise).
    cold_early = cold.diagnostics["early_hit_rate"]
    warm_early = warm.diagnostics["early_hit_rate"]
    assert warm_early >= cold_early - 0.02
    # ... and the warm prior genuinely starts loaded: the restarted
    # fleet's final mass strictly exceeds what it observed itself.
    assert (
        warm.diagnostics["shared_prior"]["transitions_observed"]
        > cold.diagnostics["shared_prior"]["transitions_observed"]
    )

    # Sharding does not lose the warm start: the pooled prior carries
    # the seed mass plus every shard's contribution, and the sharded
    # warm restart stays within noise of the unsharded one.
    assert (
        warm_sharded.diagnostics["shared_prior"]["transitions_observed"]
        >= saved.transitions_observed
    )
    assert (
        warm_sharded.diagnostics["early_hit_rate"] >= cold_early - 0.05
    )

"""Fig. 10 — utility convergence after the user pauses on a request.

Paper shape: Khameleon converges to utility 1 faster (in expectation)
than all baselines — partial blocks render something immediately and
the scheduler then fills the paused request — while congested
baselines keep the user at utility 0 until the full response lands.
"""

import statistics

from repro.experiments.figures import fig10_convergence


def test_fig10_convergence(benchmark, bench_scale, bench_report):
    rows = benchmark.pedantic(
        lambda: fig10_convergence(scale=bench_scale), rounds=1, iterations=1
    )
    bench_report("fig10_convergence", rows, "Fig. 10: utility vs time since pause")

    def curve(system: str) -> dict[float, float]:
        pts = [r for r in rows if r["system"] == system]
        out: dict[float, list[float]] = {}
        for r in pts:
            out.setdefault(r["elapsed_ms"], []).append(r["utility"])
        return {k: statistics.fmean(v) for k, v in out.items()}

    kham = curve("khameleon")
    base = curve("baseline")
    # Early in the pause Khameleon has already rendered something.
    early = min(kham)
    assert kham[early] >= base[early]
    # Khameleon's curve is (weakly) monotone toward full utility.
    ordered = [kham[k] for k in sorted(kham)]
    assert ordered[-1] >= ordered[0]
    assert ordered[-1] > 0.5

"""Shared-prior blended-row cache micro-benchmark.

Under a static workload every decode used to re-blend the same crowd
row into the same private chain — a sorted-union dict walk per decode.
The blend is now cached keyed by the ``(private, crowd)`` row-version
pair and invalidated when either chain observes a transition out of
the row.  This benchmark times the cache-hit path at a realistic
crowd-row width, measures the miss (re-blend) path by clearing the
cache per call, asserts the two are byte-identical, and records the
speedup.
"""

import time

import numpy as np

from repro.predictors.markov import MarkovModel
from repro.predictors.shared import SharedMarkovServerPredictor, SharedTransitionPrior

N_REQUESTS = 2_000
ROW_WIDTH = 128
ROW_COUNT = 3


def make_predictor(seed=11):
    rng = np.random.default_rng(seed)
    prior = SharedTransitionPrior(N_REQUESTS)
    successors = rng.choice(N_REQUESTS, size=ROW_WIDTH, replace=False)
    for s in successors:
        for _ in range(ROW_COUNT):
            prior.observe(0, int(s))
    sp = SharedMarkovServerPredictor(MarkovModel(N_REQUESTS), prior)
    # A little private history so the blend exercises the union path.
    for request in (0, 5, 0, 9, 0, 5):
        sp.model.observe(int(request))
    return sp


def test_blended_row_cache_speedup(benchmark, bench_report):
    sp = make_predictor()
    want = sp._blended_row(0)  # warm the cache

    hit = benchmark(lambda: sp._blended_row(0))
    assert hit[0] is want[0]  # served from cache

    # Miss path: clear the cache so every call re-blends.
    loops = 200
    start = time.perf_counter()
    for _ in range(loops):
        sp._blend_cache.clear()
        miss = sp._blended_row(0)
    miss_s = (time.perf_counter() - start) / loops

    np.testing.assert_array_equal(want[0], miss[0])
    np.testing.assert_array_equal(want[1], miss[1])
    assert want[2] == miss[2]

    hit_us = benchmark.stats.stats.mean * 1e6
    miss_us = miss_s * 1e6
    bench_report(
        "shared_row_cache",
        [
            {
                "crowd_row_width": ROW_WIDTH,
                "hit_us": round(hit_us, 2),
                "miss_us": round(miss_us, 2),
                "speedup": round(miss_us / hit_us, 1),
            }
        ],
        "shared-prior blended-row cache: hit vs re-blend (byte-identical)",
    )
    assert miss_us > hit_us  # the cache must actually win

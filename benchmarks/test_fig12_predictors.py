"""Fig. 12 — predictor sensitivity: Uniform vs Kalman vs Oracle.

Paper shape: even Uniform (the framework with no prediction signal)
already beats ACC-1-5 on latency at low bandwidth; Kalman improves on
Uniform; Oracle is the upper bound and pulls ahead as bandwidth grows
(1.7–5.7× lower latency than Kalman at 15 MB/s).
"""

from conftest import mean_of

from repro.experiments.figures import fig12_predictors


def test_fig12_predictors(benchmark, bench_scale, bench_report):
    rows = benchmark.pedantic(
        lambda: fig12_predictors(scale=bench_scale), rounds=1, iterations=1
    )
    bench_report("fig12_predictors", rows, "Fig. 12: predictor sensitivity")

    # The framework alone (Uniform) already beats the idealized
    # request-response prefetcher on latency.
    assert mean_of(rows, "khameleon-uniform", "latency_ms") < mean_of(
        rows, "acc-1-5", "latency_ms"
    )
    # Better predictions buy better hit rates: Kalman >= Uniform,
    # Oracle >= Kalman (small tolerance for sampling noise).
    assert (
        mean_of(rows, "khameleon", "cache_hit_%")
        >= mean_of(rows, "khameleon-uniform", "cache_hit_%") - 3.0
    )
    assert (
        mean_of(rows, "khameleon-oracle", "cache_hit_%")
        >= mean_of(rows, "khameleon", "cache_hit_%") - 3.0
    )
    # Oracle's utility dominates Kalman's: it wastes no bandwidth.
    assert (
        mean_of(rows, "khameleon-oracle", "utility")
        >= mean_of(rows, "khameleon", "utility") - 0.02
    )

"""Fig. 6 — idealized prefetching baselines vs Khameleon across
bandwidth (1.5 / 5.625 / 15 MB/s) and cache (10 / 50 / 100 MB).

Paper shape: Khameleon raises cache hit rates by 23–257× over Baseline
and 1.1–16× over the ACC-*-* upper bounds; its mean response latency
never exceeds ~14 ms while the baselines sit orders of magnitude
higher; the baselines hold utility 1 while Khameleon trades quality
(0.5–0.8) for responsiveness.
"""

from conftest import mean_of

from repro.experiments.figures import fig6_bandwidth_cache


def test_fig06_bandwidth_cache(benchmark, bench_scale, bench_report):
    rows = benchmark.pedantic(
        lambda: fig6_bandwidth_cache(scale=bench_scale), rounds=1, iterations=1
    )
    bench_report(
        "fig06_bandwidth_cache", rows, "Fig. 6: metrics vs bandwidth x cache"
    )

    # Khameleon wins hit rate and latency against every baseline.
    kham_hit = mean_of(rows, "khameleon", "cache_hit_%")
    kham_lat = mean_of(rows, "khameleon", "latency_ms")
    for system in ("baseline", "acc-1-1", "acc-1-5", "acc-0.8-5"):
        assert kham_hit > mean_of(rows, system, "cache_hit_%")
        assert kham_lat < mean_of(rows, system, "latency_ms") / 10.0
    # Baselines always deliver full quality; Khameleon trades some away.
    assert mean_of(rows, "baseline", "utility") == 1.0
    assert 0.2 < mean_of(rows, "khameleon", "utility") < 1.0

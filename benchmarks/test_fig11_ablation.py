"""Fig. 11 — ablation: prediction and progressive encoding in isolation.

Paper shape: *Predictor* (joint scheduler + Kalman, whole responses)
improves hit rate over Baseline by pushing proactively; *Progressive*
(first block only, no prefetch) cuts transfer and congestion but has
the lowest utility; only their combination (Khameleon) achieves high
hit rates with consistently low latency.
"""

from conftest import mean_of

from repro.experiments.figures import fig11_ablation


def test_fig11_ablation(benchmark, bench_scale, bench_report):
    rows = benchmark.pedantic(
        lambda: fig11_ablation(scale=bench_scale), rounds=1, iterations=1
    )
    bench_report("fig11_ablation", rows, "Fig. 11: ablation vs request latency")

    # Each mechanism alone improves on Baseline...
    assert mean_of(rows, "predictor", "cache_hit_%") > mean_of(
        rows, "baseline", "cache_hit_%"
    )
    assert mean_of(rows, "progressive", "latency_ms") < mean_of(
        rows, "baseline", "latency_ms"
    )
    # ... but Progressive pays with the lowest utility of all arms.
    for system in ("khameleon", "predictor", "baseline"):
        assert mean_of(rows, "progressive", "utility") <= mean_of(
            rows, system, "utility"
        )
    # The combination is the only arm that is both fast and high-hit.
    assert mean_of(rows, "khameleon", "latency_ms") < 100.0
    assert mean_of(rows, "khameleon", "cache_hit_%") >= mean_of(
        rows, "predictor", "cache_hit_%"
    )

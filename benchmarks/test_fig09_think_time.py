"""Fig. 9 — synthetic think-time sweep (10–200 ms) across the low /
medium / high resource settings, including the Oracle upper bound.

Paper shape: more think time helps every prefetcher (less congestion,
more slack); Khameleon holds near-instant latency throughout and
spends the extra slack on utility; Oracle ≈ Khameleon except in
high-resource settings where perfect prediction buys another ~2×.
"""

from conftest import mean_of

from repro.experiments.figures import fig9_think_time


def test_fig09_think_time(benchmark, bench_scale, bench_report):
    rows = benchmark.pedantic(
        lambda: fig9_think_time(scale=bench_scale), rounds=1, iterations=1
    )
    bench_report("fig09_think_time", rows, "Fig. 9: metrics vs think time x resources")

    # Khameleon stays interactive in every setting.
    assert mean_of(rows, "khameleon", "latency_ms") < 150.0
    # The baselines improve with think time (row-wise monotone trend in
    # the mean), but remain far slower than Khameleon overall.
    assert mean_of(rows, "baseline", "latency_ms") > 5.0 * mean_of(
        rows, "khameleon", "latency_ms"
    )
    # Oracle is at least as good as the Kalman predictor on hits.
    assert (
        mean_of(rows, "khameleon-oracle", "cache_hit_%")
        >= mean_of(rows, "khameleon", "cache_hit_%") - 5.0
    )

    # Khameleon's utility grows with think time in the high setting
    # (extra slack is spent on quality).
    kham_high = sorted(
        (r for r in rows if r["system"] == "khameleon" and r["resource"] == "high"),
        key=lambda r: r["think_time_ms"],
    )
    assert kham_high[-1]["utility"] >= kham_high[0]["utility"] - 0.02

"""Fleet scaling — N concurrent sessions over one backend + downlink.

Beyond the paper: the ROADMAP's serving scenario.  Sweeps the fleet
size over N ∈ {1, 8, 32} sessions, all exploring the same application
through a shared backend (cross-session fetch dedup) and a weighted
fair-shared downlink, and records per-session plus aggregate cache-hit
rate and p95 response latency.

Expected shape: per-session bandwidth shrinks ~1/N, so aggregate
utility degrades gracefully with N while the downlink stays fairly
shared (Jain index near 1) and backend sharing absorbs a growing
fraction of fetches.
"""

from repro.experiments.configs import DEFAULT_ENV, FleetEnvironment
from repro.experiments.runner import run_fleet
from repro.workloads.image_app import ImageExplorationApp
from repro.workloads.mouse import MouseTraceGenerator

FLEET_SIZES = (1, 8, 32)
TRACE_DURATION_S = 8.0


def run_one(num_sessions: int, bench_scale) -> dict:
    app = ImageExplorationApp(rows=bench_scale.rows, cols=bench_scale.cols)
    traces = [
        MouseTraceGenerator(app.layout, seed=100 + i).generate(
            duration_s=TRACE_DURATION_S
        )
        for i in range(num_sessions)
    ]
    fleet_env = FleetEnvironment(num_sessions=num_sessions, env=DEFAULT_ENV)
    return run_fleet(app, traces, fleet_env, predictor="kalman")


def test_fleet_scaling(benchmark, bench_scale, bench_report):
    results = benchmark.pedantic(
        lambda: [run_one(n, bench_scale) for n in FLEET_SIZES],
        rounds=1,
        iterations=1,
    )
    rows = [r.aggregate_row() for r in results]
    bench_report(
        "fleet_scaling", rows, "Fleet scaling: aggregate metrics vs sessions"
    )
    per_session_rows = [row for r in results for row in r.rows(sessions=len(r.summary.per_session))]
    bench_report(
        "fleet_scaling_sessions",
        per_session_rows,
        "Fleet scaling: per-session metrics",
    )

    by_n = dict(zip(FLEET_SIZES, results))

    # Every fleet size runs to completion and serves requests in every
    # session (the 32-session acceptance criterion).
    for n, result in by_n.items():
        agg = result.summary.aggregate
        assert agg.num_requests > 0
        assert agg.num_served > 0
        assert len(result.summary.per_session) == n
        served_sessions = sum(
            1 for s in result.summary.per_session if s is not None and s.num_served > 0
        )
        assert served_sessions == n

    # The downlink is shared fairly at every size.
    for result in results:
        assert result.diagnostics["link_fairness"] > 0.9

    # Sharing one backend pays off once there is more than one session.
    assert by_n[32].diagnostics["shared_hit_rate"] > by_n[1].diagnostics["shared_hit_rate"]
    assert by_n[32].diagnostics["shared_hit_rate"] > 0.05

    # Per-session capacity shrinks with N, so aggregate quality should
    # not improve as the fleet grows.
    assert by_n[32].summary.aggregate.mean_utility <= by_n[1].summary.aggregate.mean_utility + 0.05

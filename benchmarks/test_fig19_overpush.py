"""Fig. 19 / §B.2 — overpush rate: pushed blocks never used by an upcall.

Paper shape: Khameleon overpushes 50–75% of blocks (hedging is the
point — each wasted block is cheap), versus 35–45% of *responses* for
ACC-1-5; the tradeoff buys orders-of-magnitude lower latency.
"""

from conftest import mean_of

from repro.experiments.figures import fig19_overpush


def test_fig19_overpush(benchmark, bench_scale, bench_report):
    rows = benchmark.pedantic(
        lambda: fig19_overpush(scale=bench_scale), rounds=1, iterations=1
    )
    bench_report("fig19_overpush", rows, "Fig. 19: overpush rate")

    kham = mean_of(rows, "khameleon", "overpush_%")
    # Khameleon hedges: a substantial fraction of pushed blocks is
    # never rendered (paper: 50-75%).
    assert 20.0 < kham <= 100.0
    # ACC prefetches conservatively, so it wastes less than Khameleon.
    assert mean_of(rows, "acc-1-5", "overpush_%") < kham

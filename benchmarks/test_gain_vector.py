"""GainTable.gain_vector micro-benchmark: gather vs scalar loop.

The greedy sampler evaluates per-request marginal gains on every
allocation; at the paper's 10k-request scale that lookup is on the hot
path.  This benchmark times the vectorized numpy gather at that scale
and asserts — on the same paper-scale data — that it matches the
scalar ``gain()`` path element for element.
"""

import numpy as np

from repro.core import GainTable, ssim_image_utility


def make_paper_scale_table(n=10_000, seed=7):
    rng = np.random.default_rng(seed)
    # 1.3-2 MB images at 50 KB blocks: 26..40 blocks per request.
    num_blocks = rng.integers(26, 41, size=n)
    return GainTable(ssim_image_utility(), num_blocks), num_blocks


def test_gain_vector_matches_scalar_at_paper_scale(benchmark, bench_report):
    gains, num_blocks = make_paper_scale_table()
    rng = np.random.default_rng(11)
    m = 50_000
    requests = rng.integers(0, len(num_blocks), size=m)
    have = rng.integers(0, num_blocks.max() + 2, size=m)

    vectorized = benchmark(lambda: gains.gain_vector(requests, have))

    scalar = np.array(
        [gains.gain(int(r), int(h)) for r, h in zip(requests, have)]
    )
    np.testing.assert_array_equal(vectorized, scalar)

    bench_report(
        "gain_vector",
        [
            {
                "n_requests": len(num_blocks),
                "lookups": m,
                "distinct_counts": len(set(num_blocks.tolist())),
                "max_abs_diff": float(np.max(np.abs(vectorized - scalar))),
            }
        ],
        "gain_vector: vectorized gather vs scalar path (must be exact)",
    )

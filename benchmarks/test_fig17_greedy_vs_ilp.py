"""Fig. 17 — greedy vs LP schedule quality.

Paper shape: greedy schedules achieve competitive expected utility
(on average within ~1.2× of the LP optimum) at ≥ 3000× lower runtime.
The runtime ratio here differs (HiGHS vs Gurobi, Python vs Rust) but
the quality gap and the orders-of-magnitude speedup both hold.
"""

import statistics

from repro.experiments.figures import fig17_greedy_vs_ilp


def test_fig17_greedy_vs_ilp(benchmark, bench_report):
    rows = benchmark.pedantic(
        lambda: fig17_greedy_vs_ilp(num_requests=(5, 10, 15)),
        rounds=1,
        iterations=1,
    )
    bench_report("fig17_greedy_vs_ilp", rows, "Fig. 17: greedy vs ILP utility")

    # The ILP is the optimum: it never loses to greedy (tolerance for
    # the ILP solver's own gap).
    for r in rows:
        assert r["ilp_utility"] >= r["greedy_utility"] * 0.98
    # Greedy is competitive: within 2x of optimal on average (paper: 1.2x).
    mean_ratio = statistics.fmean(r["utility_ratio"] for r in rows)
    assert mean_ratio < 2.0
    # And vastly faster.
    assert statistics.fmean(r["speedup"] for r in rows) > 10.0

"""Fig. 14 — the ported Falcon system on the Small (1M) and Big (7M)
flights databases, varying blocks/response, predictor, and backend.

Paper shape: Kalman beats OnHover (more hits, lower latency) because
it starts the five-query slice fetch while the mouse is still
travelling; the ScalableSQL backend (no concurrency penalty) improves
response latency over PostgreSQL (≈2× for Kalman); the Big database's
1.5–2.5 s queries stress everything harder than Small's 0.8 s.
"""

import statistics

from repro.experiments.figures import fig14_falcon


def _mean(rows, column, **match):
    vals = [
        r[column]
        for r in rows
        if all(r.get(k) == v for k, v in match.items()) and column in r
    ]
    assert vals, f"no rows matching {match}"
    return statistics.fmean(vals)


def test_fig14_falcon(benchmark, bench_report):
    rows = benchmark.pedantic(
        lambda: fig14_falcon(trace_duration_s=90.0, num_traces=1),
        rounds=1,
        iterations=1,
    )
    bench_report("fig14_falcon", rows, "Fig. 14: Falcon port")

    # Kalman >= OnHover on cache hits (the headline of §6.4).
    assert (
        _mean(rows, "cache_hit_%", predictor="kalman")
        >= _mean(rows, "cache_hit_%", predictor="onhover") - 2.0
    )
    # The scalable backend is faster than the concurrency-limited one.
    assert _mean(rows, "latency_ms", backend="scalable") < _mean(
        rows, "latency_ms", backend="postgres"
    )
    # The Big database hurts everyone relative to Small.
    assert _mean(rows, "latency_ms", db="big") > _mean(rows, "latency_ms", db="small")
    # More blocks per response trades utility for responsiveness.
    assert _mean(rows, "utility", blocks=4) <= _mean(rows, "utility", blocks=1)

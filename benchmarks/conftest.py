"""Shared benchmark configuration.

Every benchmark regenerates one of the paper's figures at a reduced —
but structurally identical — scale, prints the figure's rows, and
writes them to ``benchmarks/results/<figure>.txt``.  Scale is selected
with ``REPRO_BENCH_SCALE``:

* ``quick``   — smallest sweep that still exercises every code path;
* ``default`` — the scale EXPERIMENTS.md records (a few minutes total);
* ``paper``   — the paper's full configuration (10k thumbnails,
  3-minute traces, 14 users; hours of simulation — not for CI).
"""

from __future__ import annotations

import os
import statistics
from pathlib import Path
from typing import Sequence

import pytest

from repro.experiments.figures import ImageExperimentScale
from repro.metrics.report import format_table

RESULTS_DIR = Path(__file__).parent / "results"

_SCALES = {
    "quick": ImageExperimentScale(rows=12, cols=12, trace_duration_s=10.0, num_traces=1),
    "default": ImageExperimentScale(rows=16, cols=16, trace_duration_s=15.0, num_traces=1),
    "paper": ImageExperimentScale.paper(),
}


@pytest.fixture(scope="session")
def bench_scale() -> ImageExperimentScale:
    name = os.environ.get("REPRO_BENCH_SCALE", "default")
    if name not in _SCALES:
        raise ValueError(f"REPRO_BENCH_SCALE={name!r}; want one of {sorted(_SCALES)}")
    return _SCALES[name]


@pytest.fixture(scope="session")
def bench_report():
    """Print a figure's rows and persist them under benchmarks/results/."""

    RESULTS_DIR.mkdir(exist_ok=True)

    def report(name: str, rows: Sequence[dict], title: str = "") -> None:
        text = format_table(rows, title=title or name)
        print()
        print(text)
        (RESULTS_DIR / f"{name}.txt").write_text(text + "\n")

    return report


def mean_of(rows: Sequence[dict], system: str, column: str) -> float:
    """Average a metric over one system's rows (shape assertions)."""
    values = [r[column] for r in rows if r.get("system") == system and column in r]
    if not values:
        raise AssertionError(f"no rows for system={system!r} column={column!r}")
    return statistics.fmean(values)

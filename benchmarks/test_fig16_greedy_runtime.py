"""Fig. 16 — greedy scheduler runtime across cache size, number of
requests, and blocks per request.

Paper shape: runtime is independent of blocks/request, grows with the
number of (materialized) requests and the cache size, and the
meta-request optimization keeps even 10k-request instances real-time
(the paper reports 13× savings: 1.9 s → 150 ms per 5k-block schedule).
"""

import statistics

from repro.experiments.figures import fig16_greedy_runtime


def test_fig16_greedy_runtime(benchmark, bench_report):
    rows = benchmark.pedantic(
        lambda: fig16_greedy_runtime(
            num_requests=(10, 100, 1_000, 10_000),
            cache_blocks=(100, 500),
            blocks_per_request=(50, 200),
        ),
        rounds=1,
        iterations=1,
    )
    bench_report("fig16_greedy_runtime", rows, "Fig. 16: greedy scheduler runtime")

    # Runtime is (near-)independent of blocks/request: compare the two
    # block settings at the largest instance.
    big = [r for r in rows if r["requests"] == 10_000 and r["cache_blocks"] == 500]
    times = {r["blocks_per_req"]: r["runtime_ms"] for r in big}
    assert times[200] < 5.0 * max(times[50], 0.1)
    # Every schedule fills its batch.
    assert all(r["blocks_scheduled"] == r["cache_blocks"] for r in rows)


def test_fig16_meta_request_ablation(benchmark, bench_report):
    """The §5.3.1 meta-request optimization: pooled uniform mass keeps
    the materialized fraction (and cost) low at 10k requests."""

    def run():
        with_meta = fig16_greedy_runtime(
            num_requests=(10_000,), cache_blocks=(500,), blocks_per_request=(50,),
            meta_request=True,
        )
        without = fig16_greedy_runtime(
            num_requests=(10_000,), cache_blocks=(500,), blocks_per_request=(50,),
            meta_request=False,
        )
        for r in with_meta:
            r["variant"] = "meta"
        for r in without:
            r["variant"] = "no-meta"
        return with_meta + without

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    bench_report("fig16_meta_ablation", rows, "Fig. 16 ablation: meta-request")

    meta = next(r for r in rows if r["variant"] == "meta")
    no_meta = next(r for r in rows if r["variant"] == "no-meta")
    # With pooling, only the explicitly-predicted fraction of the 10k
    # requests is materialized (paper: < 1/100 for the image gallery).
    assert meta["materialized_frac"] < 0.5
    assert no_meta["materialized_frac"] == 1.0
    # And pooling is substantially faster (paper: 13x at this scale).
    assert no_meta["runtime_ms"] > 1.5 * meta["runtime_ms"]

"""Fig. 3 — utility functions of the two applications.

Paper: the image application's SSIM-derived curve is strongly concave
(the first ~25% of blocks already carry ≈ 80% of visual quality); the
visualization application uses the conservative linear default.
"""

from repro.experiments.figures import fig3_utility_curves


def test_fig03_utility_curves(benchmark, bench_report):
    rows = benchmark.pedantic(fig3_utility_curves, rounds=1, iterations=1)
    bench_report("fig03_utility_curves", rows, "Fig. 3: utility vs % blocks")

    by_frac = {round(r["%blocks"]): r for r in rows}
    # Concavity of the image curve: a 25% prefix is worth far more than
    # 25% of full quality; the linear curve is exactly proportional.
    assert by_frac[25]["image_utility"] >= 0.6
    assert abs(by_frac[25]["vis_utility"] - 0.25) < 1e-9
    # Both curves are monotone and reach (0, 0) and (1, 1).
    assert by_frac[0]["image_utility"] == 0.0
    assert by_frac[100]["image_utility"] == 1.0
    image = [r["image_utility"] for r in rows]
    assert all(b >= a for a, b in zip(image, image[1:]))

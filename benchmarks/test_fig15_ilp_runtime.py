"""Fig. 15 — LP scheduler runtime on micro instances.

Paper shape: the ILP is far too slow for real-time use even on trivial
instances (5–15 requests, 10–30 cache blocks, 5–15 blocks/request);
its runtime grows with every dimension of the instance.
"""

import statistics

from repro.experiments.figures import fig15_ilp_runtime


def test_fig15_ilp_runtime(benchmark, bench_report):
    rows = benchmark.pedantic(
        lambda: fig15_ilp_runtime(
            num_requests=(5, 10, 15),
            cache_blocks=(10, 20, 30),
            blocks_per_request=(5, 10),
        ),
        rounds=1,
        iterations=1,
    )
    bench_report("fig15_ilp_runtime", rows, "Fig. 15: ILP scheduler runtime")

    assert all(r["optimal"] for r in rows)
    # Runtime grows with instance size: the largest corner costs more
    # than the smallest.
    smallest = min(rows, key=lambda r: (r["requests"], r["cache_blocks"], r["blocks_per_req"]))
    largest = max(rows, key=lambda r: (r["requests"], r["cache_blocks"], r["blocks_per_req"]))
    assert largest["runtime_ms"] > smallest["runtime_ms"]
    # And the mean runtime over a batch is far beyond a per-block
    # real-time budget (microseconds).
    assert statistics.fmean(r["runtime_ms"] for r in rows) > 1.0

"""Fleet churn — Poisson arrivals, departures, admission, cold starts.

Beyond the paper: the ROADMAP's open-loop serving scenario.  Users
arrive as a Poisson process (target utilization ≥ 1 session per mean
dwell, so the fleet is genuinely loaded), interact for a lognormal
dwell, and depart mid-run; an admission cap sheds arrivals when the
fleet is full.  The same scenario runs twice — once with per-session
private Markov predictors, once with the fleet-wide shared transition
prior ("shared-markov") — and reports

* per-cohort response latency (sessions bucketed by arrival time),
* admission rejections and departure counts, and
* the shared-prior cold-start hit-rate lift over private predictors.
"""

from repro.experiments.configs import DEFAULT_ENV, FleetEnvironment
from repro.experiments.runner import run_fleet
from repro.fleet import ArrivalConfig
from repro.workloads.image_app import ImageExplorationApp
from repro.workloads.mouse import MouseTraceGenerator

NUM_ARRIVALS = 10
ARRIVAL_RATE_PER_S = 0.5
MEAN_DWELL_S = 6.0
MAX_CONCURRENT = 4
TRACE_DURATION_S = 8.0


def run_one(predictor: str, bench_scale):
    app = ImageExplorationApp(rows=bench_scale.rows, cols=bench_scale.cols)
    traces = [
        MouseTraceGenerator(app.layout, seed=100 + i).generate(
            duration_s=TRACE_DURATION_S
        )
        for i in range(NUM_ARRIVALS)
    ]
    arrival = ArrivalConfig(
        rate_per_s=ARRIVAL_RATE_PER_S,
        mean_dwell_s=MEAN_DWELL_S,
        max_concurrent=MAX_CONCURRENT,
        seed=7,
    )
    # Offered load = rate x dwell >= 1 session per mean dwell.
    assert arrival.rate_per_s * arrival.mean_dwell_s >= 1.0
    fleet_env = FleetEnvironment(
        num_sessions=NUM_ARRIVALS, env=DEFAULT_ENV, arrival=arrival
    )
    return run_fleet(app, traces, fleet_env, predictor=predictor)


def test_fleet_churn(benchmark, bench_scale, bench_report):
    results = benchmark.pedantic(
        lambda: {
            "shared": run_one("shared-markov", bench_scale),
            "private": run_one("markov", bench_scale),
        },
        rounds=1,
        iterations=1,
    )
    shared, private = results["shared"], results["private"]

    bench_report(
        "fleet_churn",
        [shared.aggregate_row(), private.aggregate_row()],
        "Fleet churn: aggregate metrics, admissions, cold-start hit rate",
    )
    bench_report(
        "fleet_churn_cohorts",
        shared.cohort_rows() + private.cohort_rows(),
        "Fleet churn: per-cohort metrics (arrival-time buckets)",
    )

    for result in (shared, private):
        churn = result.diagnostics["churn"]
        # The process ran to completion: every planned user showed up,
        # and each was either admitted or rejected at the door.
        assert churn["arrivals"] == NUM_ARRIVALS
        assert churn["admitted"] + churn["rejected"] == NUM_ARRIVALS
        assert churn["admitted"] >= 2
        assert churn["peak_concurrent"] <= MAX_CONCURRENT
        assert churn["departed"] <= churn["admitted"]
        # Sessions arrived over time, so there is more than one cohort,
        # and cohort rows carry the per-cohort latency metrics.
        assert len(result.cohorts) >= 2
        populated = [c for c in result.cohorts if c.summary is not None]
        assert populated
        assert all("latency_ms" in c.row() for c in populated)
        # Metrics were actually produced under churn.
        assert result.summary.aggregate.num_served > 0

    # Both runs share one deterministic arrival plan, so admission
    # outcomes are identical and the predictors are the only variable.
    assert (
        shared.diagnostics["churn"]["admitted"]
        == private.diagnostics["churn"]["admitted"]
    )

    # The crowd-warmed prior observed real cross-session structure ...
    assert shared.diagnostics["shared_prior"]["transitions_observed"] > 0
    # ... and cold arrivals should not do worse than private predictors
    # (the deterministic hot-path unit test asserts a strict win; mouse
    # workloads here get a tolerance).
    lift = (
        shared.diagnostics["early_hit_rate"]
        - private.diagnostics["early_hit_rate"]
    )
    assert lift >= -0.05

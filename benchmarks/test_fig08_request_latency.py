"""Fig. 8 — sensitivity to request latency (20–400 ms) at 15 MB/s.

Paper shape: as request latency grows, the baselines congest (at
400 ms, Baseline is 79× and ACC-*-* 37× slower than Khameleon);
Khameleon keeps ~11 ms mean responses by degrading utility, at the
cost of ~3× more preempted requests.
"""

from conftest import mean_of

from repro.experiments.figures import fig8_request_latency


def test_fig08_request_latency(benchmark, bench_scale, bench_report):
    rows = benchmark.pedantic(
        lambda: fig8_request_latency(scale=bench_scale), rounds=1, iterations=1
    )
    bench_report("fig08_request_latency", rows, "Fig. 8: metrics vs request latency")

    assert mean_of(rows, "khameleon", "latency_ms") < 100.0

    worst = {"khameleon": 0.0, "baseline": 0.0, "acc-1-5": 0.0}
    for row in rows:
        if row["system"] in worst:
            worst[row["system"]] = max(worst[row["system"]], row["latency_ms"])
    # At the 400 ms end the gap is large (paper: 79x / 37x).
    assert worst["baseline"] > 10.0 * worst["khameleon"]
    assert worst["acc-1-5"] > 5.0 * worst["khameleon"]

    # Khameleon degrades utility as request latency rises, instead of
    # degrading latency.
    kham = [r for r in rows if r["system"] == "khameleon"]
    kham.sort(key=lambda r: r["request_latency_ms"])
    assert kham[-1]["utility"] <= kham[0]["utility"] + 0.05

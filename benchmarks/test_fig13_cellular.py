"""Fig. 13 — time-varying cellular networks (Verizon / AT&T LTE).

Paper shape: on both emulated LTE links (100 ms minimum RTT, 100 ms
request latency) Khameleon's cache hit rate is ~10× ACC-1-5's on AT&T
and its latency is hundreds of times lower.
"""

from conftest import mean_of

from repro.experiments.figures import fig13_cellular


def test_fig13_cellular(benchmark, bench_scale, bench_report):
    rows = benchmark.pedantic(
        lambda: fig13_cellular(scale=bench_scale), rounds=1, iterations=1
    )
    bench_report("fig13_cellular", rows, "Fig. 13: cellular networks")

    for network in ("verizon", "att"):
        sub = [r for r in rows if r["network"] == network]
        kham = next(r for r in sub if r["system"] == "khameleon")
        acc = next(r for r in sub if r["system"] == "acc-1-5")
        assert kham["cache_hit_%"] > acc["cache_hit_%"]
        assert kham["latency_ms"] < acc["latency_ms"] / 10.0

"""§B.1 — sensitivity to the prediction shipping interval (50–350 ms).

Paper shape: metrics are robust across 50–350 ms intervals; only very
infrequent updates (> 300 ms) in the low-resource setting degrade
accuracy enough to waste bandwidth on irrelevant data.
"""

import statistics

from repro.experiments.figures import appb1_prediction_frequency


def test_appb1_prediction_frequency(benchmark, bench_scale, bench_report):
    rows = benchmark.pedantic(
        lambda: appb1_prediction_frequency(scale=bench_scale), rounds=1, iterations=1
    )
    bench_report(
        "appb1_prediction_frequency", rows, "App. B.1: prediction interval"
    )

    # Robustness: no interval is more than an order of magnitude worse
    # than the typical one within its resource setting.  The reference
    # is the median (floored at 1 ms): at reduced scale the *minimum*
    # is a noisy statistic — one interval getting lucky and serving
    # everything near-instantly must not fail the check.
    for resource in ("low", "med", "high"):
        lats = [r["latency_ms"] for r in rows if r["resource"] == resource]
        assert max(lats) < 10.0 * max(statistics.median(lats), 1.0)
    # And every configuration stays interactive on average.
    assert statistics.fmean(r["latency_ms"] for r in rows) < 150.0

"""Extension (§8) — Q-learning scheduler vs greedy vs ILP.

The paper's future-work proposal: learn the scheduling policy with
reinforcement learning.  On micro instances the three schedulers are
directly comparable under the Eq. 2 objective; the learned policy
should land between greedy and the ILP optimum — and its Q-table size
demonstrates why tabular RL cannot reach production scale (the §8
challenge of real-time scheduling).
"""

import numpy as np

from repro.core.distribution import RequestDistribution
from repro.core.greedy import GreedyScheduler
from repro.core.ilp import ILPScheduler
from repro.core.qlearning import QLearningConfig, QLearningScheduler
from repro.core.scheduler import GainTable, expected_utility
from repro.core.utility import LinearUtility

SLOT_S = 0.01


def _instance(n=5, nb=4, seed=0):
    rng = np.random.default_rng(seed)
    k = max(2, n // 2)
    ids = np.sort(rng.choice(n, size=k, replace=False)).astype(np.int64)
    raw = rng.random((2, k))
    probs = 0.85 * raw / raw.sum(axis=1, keepdims=True)
    dist = RequestDistribution(
        n=n,
        deltas_s=np.array([0.05, 0.25]),
        explicit_ids=ids,
        explicit_probs=probs,
        residual=np.full(2, 0.15),
    )
    return GainTable(LinearUtility(), [nb] * n), dist


def run_comparison(cache_blocks=8):
    gains, dist = _instance()
    rows = []

    ilp = ILPScheduler(gains=gains, cache_blocks=cache_blocks)
    ilp_value = expected_utility(
        ilp.solve(dist, slot_duration_s=SLOT_S).schedule, dist, gains, SLOT_S
    )
    rows.append({"scheduler": "ilp (optimal)", "expected_utility": ilp_value})

    greedy = GreedyScheduler(gains, cache_blocks=cache_blocks, seed=0)
    greedy.update_distribution(dist, SLOT_S)
    greedy_value = expected_utility(greedy.schedule_batch(), dist, gains, SLOT_S)
    rows.append({"scheduler": "greedy", "expected_utility": greedy_value})

    ql = QLearningScheduler(
        gains, cache_blocks=cache_blocks, config=QLearningConfig(episodes=3_000, seed=0)
    )
    ql.train(dist, slot_duration_s=SLOT_S)
    ql_value = expected_utility(ql.schedule_batch(), dist, gains, SLOT_S)
    rows.append(
        {
            "scheduler": "q-learning",
            "expected_utility": ql_value,
            "q_states": ql.states_visited,
        }
    )
    return rows


def test_ext_qlearning(benchmark, bench_report):
    rows = benchmark.pedantic(run_comparison, rounds=1, iterations=1)
    bench_report("ext_qlearning", rows, "Extension: learned scheduling policy")

    values = {r["scheduler"]: r["expected_utility"] for r in rows}
    # ILP is the optimum.
    assert values["ilp (optimal)"] >= values["greedy"] * 0.99
    assert values["ilp (optimal)"] >= values["q-learning"] * 0.99
    # The learned policy is competitive with greedy on micro instances.
    assert values["q-learning"] >= values["greedy"] * 0.85

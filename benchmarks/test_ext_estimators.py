"""Extension (§5.4) — bandwidth estimator ablation.

The paper picks the harmonic mean of the last five receive-rate
reports.  This bench replays the same session with EWMA and
sliding-max estimators on the time-varying AT&T LTE trace, where the
estimator actually matters (on a fixed link all converge).
"""

from repro.experiments.configs import EnvironmentConfig, make_downlink, make_uplink
from repro.core.session import KhameleonSession, SessionConfig
from repro.metrics.collector import collect
from repro.predictors.base import MouseEvent
from repro.sim.engine import Simulator
from repro.sim.estimators import EWMAEstimator, SlidingMaxEstimator
from repro.sim.bandwidth import HarmonicMeanEstimator
from repro.workloads.image_app import ImageExplorationApp
from repro.workloads.mouse import MouseTraceGenerator

ENV = EnvironmentConfig(name="att", cellular="att", min_rtt_s=0.100)

ESTIMATORS = {
    "harmonic-mean (paper)": lambda: HarmonicMeanEstimator(1_000_000.0),
    "ewma": lambda: EWMAEstimator(1_000_000.0),
    "sliding-max": lambda: SlidingMaxEstimator(1_000_000.0),
}


def run_sweep():
    app = ImageExplorationApp(rows=12, cols=12)
    trace = MouseTraceGenerator(app.layout, seed=5).generate(12.0)
    rows = []
    for name, factory in ESTIMATORS.items():
        sim = Simulator()
        session = KhameleonSession(
            sim=sim,
            backend=app.make_backend(sim, fetch_delay_s=ENV.backend_delay_s),
            predictor=app.make_predictor("kalman"),
            utility=app.utility,
            num_blocks=app.num_blocks,
            downlink=make_downlink(sim, ENV, seed=1),
            uplink=make_uplink(sim, ENV),
            config=SessionConfig(cache_bytes=ENV.cache_bytes),
        )
        estimator = factory()
        session.estimator = estimator
        session.server.estimator = estimator
        session.sender.estimator = estimator
        for e in trace.events:
            sim.schedule_at(e.time_s, session.client.observe, MouseEvent(e.x, e.y))
            if e.request is not None:
                sim.schedule_at(e.time_s, session.client.request, e.request)
        session.start()
        sim.run(until=trace.duration_s + 3.0)
        session.stop()
        summary = collect(session.cache_manager.outcomes)
        rows.append(
            {
                "estimator": name,
                "cache_hit_%": 100.0 * summary.cache_hit_rate,
                "latency_ms": summary.mean_latency_ms,
                "utility": summary.mean_utility,
                "estimate_MB/s": estimator.estimate / 1e6,
            }
        )
    return rows


def test_ext_estimators(benchmark, bench_report):
    rows = benchmark.pedantic(run_sweep, rounds=1, iterations=1)
    bench_report("ext_estimators", rows, "Extension: bandwidth estimator ablation")

    # All estimators keep the session functional on a cellular link.
    for row in rows:
        assert row["cache_hit_%"] > 30.0
        assert row["latency_ms"] < 2_000.0
